"""Columnar hot-path kernel: chunked, vectorized trace execution.

The scalar simulator spends most of its time in per-access Python
dispatch: attribute lookups, method calls and re-derived shifts on the
way from ``Core.step`` through the hierarchy to DRAM.  This module keeps
the *model* bit-for-bit identical while restructuring the *execution*:

1. **Chunk preparation (vectorized).**  For each chunk of trace records
   the allocator classifies every address's page size and computes its
   physical address, native TLB page and block number in numpy
   (``PhysicalMemoryAllocator.prepare_chunk``).  Page-size decisions are
   pure hashes, so they vectorize exactly; first-touch allocations are
   replayed scalar, in access order, so allocator state (including dict
   insertion order, which pickled snapshots serialize) matches the
   scalar path bitwise.  The kernel then derives the remaining pure
   per-record columns — ROB entry counts, fetch-cycle increments,
   store flags, TLB lookup keys and set indices, and L1/L2/LLC set
   indices — in one vectorized pass per chunk.

2. **Fused inner loop (scalar, hoisted).**  A single flat loop walks the
   precomputed columns and executes the core timing model and the
   hierarchy demand/prefetch paths with structure references and hot
   counters hoisted into locals, feeding the *unchanged* scalar state
   machines (prefetcher FSMs, Set-Dueling, MSHR contents, replacement
   stamps).  Counters batched in locals are flushed to their objects at
   chunk boundaries and around the rare escapes into un-inlined
   machinery (page walks, writeback cascades).

Equivalence is enforced three ways: the golden-trace corpus digests,
the differential oracle (which exercises the compat loop — the same
chunk preparation driving the ordinary ``_access`` path with its full
observer event stream), and the snapshot/resume tests (chunk boundaries
are clamped to snapshot barriers, so mid-run state dumps are bitwise
identical to scalar ones).

What stays scalar and why: the prefetcher FSMs (SPP lookahead, PPF
features, Set-Dueling counters) mutate tables per event with
data-dependent control flow — vectorizing them would fork the model.
They account for a bounded share of the per-access cost once the
dispatch around them is gone.

Environment knobs (see README):

- ``REPRO_KERNEL``  : ``auto`` (default) | ``vector`` | ``scalar``.
- ``REPRO_CHUNK``   : records per chunk (default 4096, min 1).
"""

from __future__ import annotations

import os

try:
    import numpy as _np
except ImportError:                            # pragma: no cover
    _np = None

from repro.sim.config import ConfigurationError, env_int
from repro.verify import invariants

#: Default records per chunk: large enough to amortize the vectorized
#: pass and the boundary flushes, small enough that first-touch
#: pre-allocation stays a short lookahead.
DEFAULT_CHUNK = 4096

KERNEL_MODES = ("auto", "vector", "scalar")

_INF = float("inf")


def kernel_mode() -> str:
    """The ``REPRO_KERNEL`` knob: auto (default), vector, or scalar."""
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if not raw:
        return "auto"
    if raw not in KERNEL_MODES:
        raise ConfigurationError(
            f"REPRO_KERNEL must be one of {KERNEL_MODES}, got {raw!r}")
    return raw


def chunk_size() -> int:
    """The ``REPRO_CHUNK`` knob: records per kernel chunk."""
    return env_int("REPRO_CHUNK", DEFAULT_CHUNK, minimum=1)


# ----------------------------------------------------------------------
# Capability gates
# ----------------------------------------------------------------------

def _supports_vector(hierarchy) -> bool:
    """Chunk pre-translation is only sound when nothing else allocates.

    The TLB-prefetch extension and the L1D (virtual-address) prefetcher
    both call ``allocator.translate`` mid-stream, which would interleave
    first-touch allocations with the chunk's replay and change frame
    assignment order.  A subclassed allocator may do anything at all.
    """
    import inspect
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.vm.allocator import PhysicalMemoryAllocator
    # Duck-typed stand-ins (fixed-latency stubs, monkey-patched methods,
    # subclasses) take the scalar loop: the chunked path relies on
    # load/store honouring the ``pre`` argument.
    if type(hierarchy) is not MemoryHierarchy:
        return False
    try:
        if ("pre" not in inspect.signature(hierarchy.load).parameters
                or "pre" not in
                inspect.signature(hierarchy.store).parameters):
            return False
    except (TypeError, ValueError):               # pragma: no cover
        return False
    return (type(hierarchy.allocator) is PhysicalMemoryAllocator
            and hierarchy.l1d_prefetcher is None
            and not hierarchy.config.tlb_prefetch)


def _supports_fast(core, hierarchy) -> bool:
    """The fused loop mirrors specific implementations; anything it
    inlines must be exactly the stock class (a subclass could override
    behaviour the loop bypasses), every replacement policy must be plain
    LRU (``FIFOPolicy`` subclasses it with a different ``on_hit``), and
    observers/invariant checks need the un-fused event sites."""
    from repro.cpu.core import Core
    from repro.memory.cache import Cache
    from repro.memory.dram import DRAM
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.memory.mshr import MSHR
    from repro.memory.replacement import LRUPolicy
    from repro.core.ppm import PageSizePropagationModule
    from repro.vm.tlb import TLB
    from repro.vm.walker import AddressTranslator
    if not (type(core) is Core
            and type(hierarchy) is MemoryHierarchy
            and hierarchy.observer is None
            and not hierarchy._check
            and not invariants.enabled()
            and hierarchy.llc_module is None
            and type(hierarchy.dram) is DRAM
            and type(hierarchy.translator) is AddressTranslator
            and type(hierarchy.translator.dtlb) is TLB
            and type(hierarchy.ppm) is PageSizePropagationModule):
        return False
    for cache in (hierarchy.l1d, hierarchy.l2c, hierarchy.llc):
        if type(cache) is not Cache:
            return False
        if (type(cache.mshr) is not MSHR
                or type(cache.pf_mshr) is not MSHR):
            return False
        for policy in cache._policies:
            if type(policy) is not LRUPolicy:
                return False
    return True


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def run_trace(core, trace, warmup_records: int = 0, start_index: int = 0,
              on_record=None, barrier_every: int = 0):
    """Execute *trace* on *core*; the ``Core.run`` entry point.

    Picks the fastest loop the configuration supports: fused vector,
    compat vector (chunk-prepared translation through the ordinary
    ``_access`` path — used under observers/invariant checks), or the
    scalar reference loop.
    """
    mode = kernel_mode()
    records = trace.records
    n = len(records)
    hierarchy = core.hierarchy
    use_vector = (mode != "scalar" and _np is not None and n > 0
                  and _supports_vector(hierarchy))
    if use_vector and on_record is not None and barrier_every <= 0:
        # An arbitrary per-record callback with no declared barrier must
        # observe exact state after every record; only the scalar loop
        # guarantees that.  (Snapshotting declares its barrier; kill
        # faults piggyback on it or tolerate the fallback.)
        use_vector = False
    if not use_vector:
        return core.run_scalar(trace, warmup_records=warmup_records,
                               start_index=start_index, on_record=on_record)
    try:
        cols = trace.columns()
    except (RuntimeError, OverflowError, TypeError, ValueError):
        # Addresses the columnar dtypes cannot hold (synthetic tests use
        # arbitrary ints): the scalar loop handles anything.
        return core.run_scalar(trace, warmup_records=warmup_records,
                               start_index=start_index, on_record=on_record)
    addresses = cols[1]

    if start_index == 0:
        core.reset()
    fast = _supports_fast(core, hierarchy)
    chunk = chunk_size()
    prepare = hierarchy.allocator.prepare_chunk
    index = start_index
    while index < n:
        if index == warmup_records:
            core.begin_measurement()
        end = min(index + chunk, n)
        if index < warmup_records:
            end = min(end, warmup_records)
        if barrier_every > 0:
            end = min(end, ((index // barrier_every) + 1) * barrier_every)
        pre = prepare(addresses[index:end])
        if fast:
            _run_chunk_fast(core, hierarchy, cols, pre, index, end,
                            on_record)
        else:
            _run_chunk_compat(core, records, pre, index, end, on_record)
        index = end
    if warmup_records >= n:
        core.begin_measurement()
    return core.finish()


def _run_chunk_compat(core, records, pre, lo: int, hi: int,
                      on_record) -> None:
    """Chunk-prepared translation through the ordinary access path.

    Keeps every observer event, invariant check and statistic exactly as
    the scalar path emits them (state lives in the objects after every
    record), while still skipping the per-access allocator translation.
    """
    paddr_l, ps_l, _, _ = pre
    step = core.step
    for i in range(lo, hi):
        j = i - lo
        step(records[i], (paddr_l[j], ps_l[j]))
        if on_record is not None:
            on_record(i)


def _run_chunk_fast(core, h, cols, pre, lo: int, hi: int,
                    on_record) -> None:
    """The fused inner loop: core timing + demand path + prefetch issue.

    Mirrors, line for line, the semantics of ``Core.step`` →
    ``MemoryHierarchy._access`` → ``_l2_demand`` → ``_llc_demand`` →
    ``_issue_l2_prefetch`` with the stock ``Cache``/``MSHR``/``TLB``/
    ``DRAM``/LRU implementations inlined (guarded by
    ``_supports_fast``).  Escapes into un-inlined machinery — the
    post-DTLB-miss translator (page walks), dirty-writeback cascades and
    the prefetch module callbacks — operate on object state only; the
    counters batched in locals are synced around the translator escape
    (the one escape that touches them) and flushed at chunk end.

    MSHR capacity sweeps are gated on each MSHR's ``_floor`` bound
    (``MSHR._expire`` applies the same gate on the scalar path): a sweep
    whose lower bound lies in the future deletes nothing, so skipping it
    leaves observable state untouched.
    """
    from repro.memory.cache import CacheLine

    paddr_l, ps_l, nat_l, block_l = pre
    # --- structures ----------------------------------------------------
    l1d = h.l1d
    l2c = h.l2c
    llc = h.llc
    dram = h.dram
    l1_sets = l1d._sets
    l1_pols = l1d._policies
    l1_ways = l1d.ways
    l1_lat = l1d.latency
    l2_sets = l2c._sets
    l2_pols = l2c._policies
    l2_mask = l2c._set_mask
    l2_ways = l2c.ways
    l2_lat = l2c.latency
    l3_sets = llc._sets
    l3_pols = llc._policies
    l3_mask = llc._set_mask
    l3_ways = llc.ways
    l3_lat = llc.latency
    l1_mshr = l1d.mshr
    l1_ments = l1_mshr._entries
    l1_cap = l1_mshr.capacity
    l1_pq = l1d.pf_mshr
    l1_pents = l1_pq._entries
    l2_mshr = l2c.mshr
    l2_ments = l2_mshr._entries
    l2_cap = l2_mshr.capacity
    l2_pq = l2c.pf_mshr
    l2_pents = l2_pq._entries
    l2_pq_cap = l2_pq.capacity
    l3_mshr = llc.mshr
    l3_ments = l3_mshr._entries
    l3_cap = l3_mshr.capacity
    l3_pq = llc.pf_mshr
    l3_pents = l3_pq._entries
    l3_pq_cap = l3_pq.capacity
    translator = h.translator
    dtlb = translator.dtlb
    dtlb_sets = dtlb._sets
    dtlb_nsets = dtlb.num_sets
    translate_miss = translator._translate_after_dtlb_miss
    walk_fn = h._walk_access
    module = h.l2_module
    mod_access = module.on_l2_access
    mod_useful = module.on_useful
    mod_miss = module.on_demand_miss
    mod_evict = module.on_evicted_unused
    writeback_l2 = h._writeback_to_l2
    writeback_llc = h._writeback_to_llc
    ppm = h.ppm
    ppm_enabled = ppm.enabled
    use_ps_bit = h.oracle_page_size or ppm_enabled
    ppm_to_llc = h.config.ppm_to_llc
    n_channels = dram.channels
    n_banks = dram.banks
    bank_row_div = n_banks * dram._blocks_per_row
    open_rows = dram._open_rows
    channel_free = dram._channel_free
    cpt = dram._cycles_per_transfer
    row_hit_lat = dram.config.row_hit_latency
    row_miss_lat = dram.config.row_miss_latency
    rob_entries = core.rob_entries
    fetch_width = core.fetch_width
    inflight = core.inflight
    inflight_append = inflight.append
    inflight_popleft = inflight.popleft
    # --- columnar per-chunk precompute (pure per-record functions) -----
    ips_l = cols[0][lo:hi].tolist()
    vaddrs_l = cols[1][lo:hi].tolist()
    isw_l = (cols[2][lo:hi] != 0).tolist()
    entries_arr = cols[3][lo:hi] + 1
    entries_l = entries_arr.tolist()
    finc_l = (entries_arr / fetch_width).tolist()
    deps_l = cols[4][lo:hi].tolist()
    blocks_arr = _np.array(block_l, dtype=_np.int64)
    s1_l = (blocks_arr & l1d._set_mask).tolist()
    s2_l = (blocks_arr & l2_mask).tolist()
    s3_l = (blocks_arr & l3_mask).tolist()
    dsi_l = (_np.array(nat_l, dtype=_np.int64) % dtlb_nsets).tolist()
    key_l = list(zip(ps_l, nat_l))
    # --- batched counters (flushed below; keep the lists in sync!) -----
    fetch = core.fetch
    retire_frontier = core.retire_frontier
    occupancy = core.occupancy
    last_load_complete = core.last_load_complete
    instructions = core.instructions
    memory_accesses = core.memory_accesses
    stall_cycles = core.stall_cycles
    h_loads = h.loads
    h_stores = h.stores
    h_load_lat = h.load_latency_sum
    l2_lat_sum = h.l2_demand_latency_sum
    l2_lat_cnt = h.l2_demand_latency_count
    l3_lat_sum = h.llc_demand_latency_sum
    l3_lat_cnt = h.llc_demand_latency_count
    pf_l2 = h.pf_issued_l2
    pf_llc = h.pf_issued_llc
    pf_drop = h.pf_dropped_mshr
    pf_red = h.pf_redundant
    l1_dem = l1d.demand_accesses
    l1_hit = l1d.demand_hits
    l1_miss = l1d.demand_misses
    l1_use = l1d.useful_prefetches
    l2_dem = l2c.demand_accesses
    l2_hit = l2c.demand_hits
    l2_missc = l2c.demand_misses
    l2_use = l2c.useful_prefetches
    l3_dem = llc.demand_accesses
    l3_hit = llc.demand_hits
    l3_missc = llc.demand_misses
    l3_use = llc.useful_prefetches
    dt_clock = dtlb._clock
    dt_hits = dtlb.hits
    dt_miss = dtlb.misses
    dt_hits2m = dtlb.hits_2m
    ppm_ann = ppm.annotations
    l1m_stalls = l1_mshr.stalls
    l1m_merges = l1_mshr.merges
    l1m_ins = l1_mshr.inserts
    l1p_merges = l1_pq.merges

    last = hi - 1
    for (i, entries, finc, is_write, dep, key, dsi, ps, block,
         s1, s2, s3, ip) in zip(
            range(lo, hi), entries_l, finc_l, isw_l, deps_l, key_l,
            dsi_l, ps_l, block_l, s1_l, s2_l, s3_l, ips_l):
        # --- Core.step: ROB reclaim + fetch ---------------------------
        while occupancy + entries > rob_entries and inflight:
            complete, freed = inflight_popleft()
            if complete > retire_frontier:
                retire_frontier = complete
            occupancy -= freed
        if retire_frontier > fetch:
            stall_cycles += retire_frontier - fetch
            fetch = retire_frontier
        fetch += finc
        issue_at = fetch
        if dep and last_load_complete > issue_at:
            issue_at = last_load_complete
        if is_write:
            h_stores += 1
        else:
            h_loads += 1
        # --- translate (DTLB native-key probe; walker on miss) --------
        dt_clock += 1
        dset = dtlb_sets[dsi]
        if key in dset:
            dset[key] = dt_clock
            dt_hits += 1
            if ps == 1:
                dt_hits2m += 1
            t = issue_at
        else:
            dt_miss += 1
            # Sync DTLB state the translator/walk path reads and writes
            # (the walker's cache/MSHR traffic uses object state only).
            dtlb._clock = dt_clock
            dtlb.hits = dt_hits
            dtlb.misses = dt_miss
            dtlb.hits_2m = dt_hits2m
            t = issue_at + translate_miss(vaddrs_l[i - lo], ps, issue_at,
                                          walk_fn)
            dt_clock = dtlb._clock
        # --- L1D demand ----------------------------------------------
        l1_set = l1_sets[s1]
        line = l1_set.get(block)
        l1_dem += 1
        if line is not None:
            pol = l1_pols[s1]
            c = pol._clock + 1
            pol._clock = c
            pol._stamps[block] = c
            l1_hit += 1
            if line.prefetch:
                l1_use += 1
                line.prefetch = False
            if is_write:
                line.dirty = True
            ready = t + l1_lat
            e = l1_ments.get(block)
            if e is not None:
                if e[0] <= t:
                    del l1_ments[block]
                    e = None
                else:
                    l1m_merges += 1
            if e is None:
                e = l1_pents.get(block)
                if e is not None:
                    if e[0] <= t:
                        del l1_pents[block]
                        e = None
                    else:
                        l1p_merges += 1
            if e is not None and e[0] > ready:
                ready = e[0]
        else:
            l1_miss += 1
            e = l1_ments.get(block)
            if e is not None:
                if e[0] <= t:
                    del l1_ments[block]
                    e = None
                else:
                    l1m_merges += 1
            if e is None:
                e = l1_pents.get(block)
                if e is not None:
                    if e[0] <= t:
                        del l1_pents[block]
                        e = None
                    else:
                        l1p_merges += 1
            if e is not None:
                # Merge with the in-flight fill.
                ready = e[0]
                floor = t + l1_lat
                if floor > ready:
                    ready = floor
            else:
                # True L1 miss: MSHR stall, then the L2 demand path.
                if len(l1_ments) >= l1_cap:
                    if l1_mshr._floor <= t:
                        dead = [b for b, en in l1_ments.items()
                                if en[0] <= t]
                        for b in dead:
                            del l1_ments[b]
                        l1_mshr._floor = min(
                            (en[0] for en in l1_ments.values()),
                            default=_INF)
                    if len(l1_ments) >= l1_cap:
                        l1m_stalls += 1
                        t = min(en[0] for en in l1_ments.values())
                t_l2 = t + l1_lat
                # --- _l2_demand ----------------------------------------
                psb = ps if use_ps_bit else None
                l2_set = l2_sets[s2]
                line2 = l2_set.get(block)
                hit2 = line2 is not None
                l2_dem += 1
                useful_issuer = None
                if hit2:
                    pol = l2_pols[s2]
                    c = pol._clock + 1
                    pol._clock = c
                    pol._stamps[block] = c
                    l2_hit += 1
                    if line2.prefetch:
                        l2_use += 1
                        line2.prefetch = False
                        useful_issuer = line2.issuer
                else:
                    l2_missc += 1
                if useful_issuer is not None:
                    mod_useful(block, useful_issuer)
                requests = mod_access(block, ip, hit2, s2, psb, ps)
                if hit2:
                    ready2 = t_l2 + l2_lat
                    e = l2_ments.get(block)
                    if e is not None:
                        if e[0] <= t_l2:
                            del l2_ments[block]
                            e = None
                        else:
                            l2_mshr.merges += 1
                    if e is None:
                        e = l2_pents.get(block)
                        if e is not None:
                            if e[0] <= t_l2:
                                del l2_pents[block]
                                e = None
                            else:
                                l2_pq.merges += 1
                    if e is not None and e[0] > ready2:
                        ready2 = e[0]
                else:
                    mod_miss(block)
                    e = l2_ments.get(block)
                    if e is not None:
                        if e[0] <= t_l2:
                            del l2_ments[block]
                            e = None
                        else:
                            l2_mshr.merges += 1
                    if e is None:
                        e = l2_pents.get(block)
                        if e is not None:
                            if e[0] <= t_l2:
                                del l2_pents[block]
                                e = None
                            else:
                                l2_pq.merges += 1
                    if e is not None:
                        ready2 = e[0]
                        floor = t_l2 + l2_lat
                        if floor > ready2:
                            ready2 = floor
                    else:
                        t_alloc = t_l2
                        if len(l2_ments) >= l2_cap:
                            if l2_mshr._floor <= t_l2:
                                dead = [b for b, en in l2_ments.items()
                                        if en[0] <= t_l2]
                                for b in dead:
                                    del l2_ments[b]
                                l2_mshr._floor = min(
                                    (en[0] for en in l2_ments.values()),
                                    default=_INF)
                            if len(l2_ments) >= l2_cap:
                                l2_mshr.stalls += 1
                                t_alloc = min(en[0]
                                              for en in l2_ments.values())
                        bit_llc = psb if ppm_to_llc else None
                        # --- _llc_demand (count_demand=True) -----------
                        t3 = t_alloc + l2_lat
                        l3_set = l3_sets[s3]
                        line3 = l3_set.get(block)
                        hit3 = line3 is not None
                        l3_dem += 1
                        ui3 = None
                        if hit3:
                            pol = l3_pols[s3]
                            c = pol._clock + 1
                            pol._clock = c
                            pol._stamps[block] = c
                            l3_hit += 1
                            if line3.prefetch:
                                l3_use += 1
                                line3.prefetch = False
                                ui3 = line3.issuer
                        else:
                            l3_missc += 1
                        if ui3 is not None:
                            mod_useful(block, ui3)
                        if hit3:
                            ready3 = t3 + l3_lat
                            e = l3_ments.get(block)
                            if e is not None:
                                if e[0] <= t3:
                                    del l3_ments[block]
                                    e = None
                                else:
                                    l3_mshr.merges += 1
                            if e is None:
                                e = l3_pents.get(block)
                                if e is not None:
                                    if e[0] <= t3:
                                        del l3_pents[block]
                                        e = None
                                    else:
                                        l3_pq.merges += 1
                            if e is not None and e[0] > ready3:
                                ready3 = e[0]
                        else:
                            e = l3_ments.get(block)
                            if e is not None:
                                if e[0] <= t3:
                                    del l3_ments[block]
                                    e = None
                                else:
                                    l3_mshr.merges += 1
                            if e is None:
                                e = l3_pents.get(block)
                                if e is not None:
                                    if e[0] <= t3:
                                        del l3_pents[block]
                                        e = None
                                    else:
                                        l3_pq.merges += 1
                            if e is not None:
                                ready3 = e[0]
                                floor = t3 + l3_lat
                                if floor > ready3:
                                    ready3 = floor
                            else:
                                tb = t3
                                if len(l3_ments) >= l3_cap:
                                    if l3_mshr._floor <= t3:
                                        dead = [b for b, en
                                                in l3_ments.items()
                                                if en[0] <= t3]
                                        for b in dead:
                                            del l3_ments[b]
                                        l3_mshr._floor = min(
                                            (en[0] for en
                                             in l3_ments.values()),
                                            default=_INF)
                                    if len(l3_ments) >= l3_cap:
                                        l3_mshr.stalls += 1
                                        tb = min(en[0] for en
                                                 in l3_ments.values())
                                # DRAM read.
                                tq = tb + l3_lat
                                ch = block % n_channels
                                within = block // n_channels
                                bank = within % n_banks
                                row = within // bank_row_div
                                start = channel_free[ch]
                                if start < tq:
                                    start = tq
                                dram.total_queue_cycles += start - tq
                                orow = open_rows[ch]
                                if orow[bank] == row:
                                    lat = row_hit_lat
                                    dram.row_hits += 1
                                else:
                                    lat = row_miss_lat
                                    dram.row_misses += 1
                                    orow[bank] = row
                                channel_free[ch] = start + cpt
                                dram.reads += 1
                                ready3 = start + lat
                                # llc.mshr.insert(block, ready3)
                                if len(l3_ments) >= l3_cap:
                                    if l3_mshr._floor <= ready3:
                                        dead = [b for b, en
                                                in l3_ments.items()
                                                if en[0] <= ready3]
                                        for b in dead:
                                            del l3_ments[b]
                                        l3_mshr._floor = min(
                                            (en[0] for en
                                             in l3_ments.values()),
                                            default=_INF)
                                    if len(l3_ments) >= l3_cap:
                                        raise RuntimeError(
                                            f"{l3_mshr.name}: insert into "
                                            f"full MSHR")
                                l3_ments[block] = (ready3, 0)
                                l3_mshr.inserts += 1
                                if ready3 < l3_mshr._floor:
                                    l3_mshr._floor = ready3
                                # _fill_llc(block)
                                existing = l3_set.get(block)
                                if existing is not None:
                                    existing.prefetch = False
                                else:
                                    pol = l3_pols[s3]
                                    st = pol._stamps
                                    if len(l3_set) >= l3_ways:
                                        victim = min(st, key=st.__getitem__)
                                        vline = l3_set.pop(victim)
                                        del st[victim]
                                        if vline.dirty:
                                            llc.writebacks += 1
                                        dirty_victim = vline.dirty
                                    else:
                                        victim = None
                                        dirty_victim = False
                                    l3_set[block] = CacheLine()
                                    c = pol._clock + 1
                                    pol._clock = c
                                    st[block] = c
                                    if dirty_victim:
                                        # LLC eviction: posted DRAM write.
                                        ch = victim % n_channels
                                        within = victim // n_channels
                                        bank = within % n_banks
                                        row = within // bank_row_div
                                        start = channel_free[ch]
                                        dram.total_queue_cycles += start
                                        orow = open_rows[ch]
                                        if orow[bank] != row:
                                            dram.row_misses += 1
                                            orow[bank] = row
                                        else:
                                            dram.row_hits += 1
                                        channel_free[ch] = start + cpt
                                        dram.writes += 1
                        l3_lat_sum += ready3 - t3
                        l3_lat_cnt += 1
                        # --- back in _l2_demand: allocate + fill L2 ----
                        ready2 = ready3
                        ps_ins = 0 if bit_llc is None else bit_llc
                        if len(l2_ments) >= l2_cap:
                            if l2_mshr._floor <= ready2:
                                dead = [b for b, en in l2_ments.items()
                                        if en[0] <= ready2]
                                for b in dead:
                                    del l2_ments[b]
                                l2_mshr._floor = min(
                                    (en[0] for en in l2_ments.values()),
                                    default=_INF)
                            if len(l2_ments) >= l2_cap:
                                raise RuntimeError(
                                    f"{l2_mshr.name}: insert into full MSHR")
                        l2_ments[block] = (ready2, ps_ins)
                        l2_mshr.inserts += 1
                        if ready2 < l2_mshr._floor:
                            l2_mshr._floor = ready2
                        # _fill_l2(block)
                        existing = l2_set.get(block)
                        if existing is not None:
                            existing.prefetch = False
                        else:
                            pol = l2_pols[s2]
                            st = pol._stamps
                            evicted_line = None
                            if len(l2_set) >= l2_ways:
                                victim = min(st, key=st.__getitem__)
                                evicted_line = l2_set.pop(victim)
                                del st[victim]
                                if evicted_line.dirty:
                                    l2c.writebacks += 1
                            l2_set[block] = CacheLine()
                            c = pol._clock + 1
                            pol._clock = c
                            st[block] = c
                            if evicted_line is not None:
                                if evicted_line.prefetch:
                                    mod_evict(victim, evicted_line.issuer)
                                if evicted_line.dirty:
                                    writeback_llc(victim)
                l2_lat_sum += ready2 - t_l2
                l2_lat_cnt += 1
                # --- prefetch issue (_issue_l2_prefetch per request) --
                for request in requests:
                    pb = request.block
                    s2p = pb & l2_mask
                    if pb in l2_sets[s2p]:
                        pf_red += 1
                        continue
                    e = l2_ments.get(pb)
                    if e is not None and e[0] <= t_l2:
                        del l2_ments[pb]
                        e = None
                    if e is None:
                        e = l2_pents.get(pb)
                        if e is not None and e[0] <= t_l2:
                            del l2_pents[pb]
                            e = None
                    if e is not None:
                        pf_red += 1
                        continue
                    fill_l2 = request.fill_l2
                    if fill_l2 and len(l2_pents) >= l2_pq_cap:
                        if l2_pq._floor <= t_l2:
                            dead = [b for b, en in l2_pents.items()
                                    if en[0] <= t_l2]
                            for b in dead:
                                del l2_pents[b]
                            l2_pq._floor = min(
                                (en[0] for en in l2_pents.values()),
                                default=_INF)
                        if len(l2_pents) >= l2_pq_cap:
                            pf_drop += 1
                            continue
                    # Locate the data: LLC probe (touches LRU on hit).
                    s3p = pb & l3_mask
                    l3p_set = l3_sets[s3p]
                    line3 = l3p_set.get(pb)
                    if line3 is not None:
                        pol = l3_pols[s3p]
                        c = pol._clock + 1
                        pol._clock = c
                        pol._stamps[pb] = c
                        pf_ready = t_l2 + l2_lat + l3_lat
                    else:
                        e = l3_ments.get(pb)
                        if e is not None:
                            if e[0] <= t_l2:
                                del l3_ments[pb]
                                e = None
                            else:
                                l3_mshr.merges += 1
                        if e is None:
                            e = l3_pents.get(pb)
                            if e is not None:
                                if e[0] <= t_l2:
                                    del l3_pents[pb]
                                    e = None
                                else:
                                    l3_pq.merges += 1
                        if e is not None:
                            pf_ready = e[0]
                        else:
                            if len(l3_pents) >= l3_pq_cap:
                                if l3_pq._floor <= t_l2:
                                    dead = [b for b, en in l3_pents.items()
                                            if en[0] <= t_l2]
                                    for b in dead:
                                        del l3_pents[b]
                                    l3_pq._floor = min(
                                        (en[0] for en in l3_pents.values()),
                                        default=_INF)
                                if len(l3_pents) >= l3_pq_cap:
                                    pf_drop += 1
                                    continue
                            # DRAM read for the prefetch.
                            tq = t_l2 + l2_lat + l3_lat
                            ch = pb % n_channels
                            within = pb // n_channels
                            bank = within % n_banks
                            row = within // bank_row_div
                            start = channel_free[ch]
                            if start < tq:
                                start = tq
                            dram.total_queue_cycles += start - tq
                            orow = open_rows[ch]
                            if orow[bank] == row:
                                lat = row_hit_lat
                                dram.row_hits += 1
                            else:
                                lat = row_miss_lat
                                dram.row_misses += 1
                                orow[bank] = row
                            channel_free[ch] = start + cpt
                            dram.reads += 1
                            pf_ready = start + lat
                            # llc.pf_mshr.insert(pb, pf_ready)
                            if len(l3_pents) >= l3_pq_cap:
                                if l3_pq._floor <= pf_ready:
                                    dead = [b for b, en in l3_pents.items()
                                            if en[0] <= pf_ready]
                                    for b in dead:
                                        del l3_pents[b]
                                    l3_pq._floor = min(
                                        (en[0] for en in l3_pents.values()),
                                        default=_INF)
                                if len(l3_pents) >= l3_pq_cap:
                                    raise RuntimeError(
                                        f"{l3_pq.name}: insert into full "
                                        f"MSHR")
                            l3_pents[pb] = (pf_ready, 0)
                            l3_pq.inserts += 1
                            if pf_ready < l3_pq._floor:
                                l3_pq._floor = pf_ready
                            # _fill_llc(pb, prefetch=not fill_l2, issuer)
                            pf_flag = not fill_l2
                            existing = l3p_set.get(pb)
                            if existing is not None:
                                if not pf_flag:
                                    existing.prefetch = False
                            else:
                                pol = l3_pols[s3p]
                                st = pol._stamps
                                victim = None
                                dirty_victim = False
                                if len(l3p_set) >= l3_ways:
                                    victim = min(st, key=st.__getitem__)
                                    vline = l3p_set.pop(victim)
                                    del st[victim]
                                    if vline.dirty:
                                        llc.writebacks += 1
                                        dirty_victim = True
                                l3p_set[pb] = CacheLine(
                                    prefetch=pf_flag, issuer=request.issuer)
                                c = pol._clock + 1
                                pol._clock = c
                                st[pb] = c
                                if pf_flag:
                                    llc.prefetch_fills += 1
                                if dirty_victim:
                                    ch = victim % n_channels
                                    within = victim // n_channels
                                    bank = within % n_banks
                                    row = within // bank_row_div
                                    start = channel_free[ch]
                                    dram.total_queue_cycles += start
                                    orow = open_rows[ch]
                                    if orow[bank] != row:
                                        dram.row_misses += 1
                                        orow[bank] = row
                                    else:
                                        dram.row_hits += 1
                                    channel_free[ch] = start + cpt
                                    dram.writes += 1
                    if fill_l2:
                        # l2c.pf_mshr.insert(pb, pf_ready)
                        if len(l2_pents) >= l2_pq_cap:
                            if l2_pq._floor <= pf_ready:
                                dead = [b for b, en in l2_pents.items()
                                        if en[0] <= pf_ready]
                                for b in dead:
                                    del l2_pents[b]
                                l2_pq._floor = min(
                                    (en[0] for en in l2_pents.values()),
                                    default=_INF)
                            if len(l2_pents) >= l2_pq_cap:
                                raise RuntimeError(
                                    f"{l2_pq.name}: insert into full MSHR")
                        l2_pents[pb] = (pf_ready, 0)
                        l2_pq.inserts += 1
                        if pf_ready < l2_pq._floor:
                            l2_pq._floor = pf_ready
                        # _fill_l2(pb, prefetch=True, issuer)
                        l2p_set = l2_sets[s2p]
                        existing = l2p_set.get(pb)
                        if existing is not None:
                            pass  # prefetch fill merges without clearing
                        else:
                            pol = l2_pols[s2p]
                            st = pol._stamps
                            evicted_line = None
                            if len(l2p_set) >= l2_ways:
                                victim = min(st, key=st.__getitem__)
                                evicted_line = l2p_set.pop(victim)
                                del st[victim]
                                if evicted_line.dirty:
                                    l2c.writebacks += 1
                            l2p_set[pb] = CacheLine(
                                prefetch=True, issuer=request.issuer)
                            c = pol._clock + 1
                            pol._clock = c
                            st[pb] = c
                            l2c.prefetch_fills += 1
                            if evicted_line is not None:
                                if evicted_line.prefetch:
                                    mod_evict(victim, evicted_line.issuer)
                                if evicted_line.dirty:
                                    writeback_llc(victim)
                        pf_l2 += 1
                    else:
                        if line3 is not None:
                            pf_red += 1
                        else:
                            pf_llc += 1
                ready = ready2
                # --- PPM annotation: L1D MSHR insert -------------------
                bit1 = ps if ppm_enabled else 0
                if ppm_enabled:
                    ppm_ann += 1
                if len(l1_ments) >= l1_cap:
                    if l1_mshr._floor <= ready:
                        dead = [b for b, en in l1_ments.items()
                                if en[0] <= ready]
                        for b in dead:
                            del l1_ments[b]
                        l1_mshr._floor = min(
                            (en[0] for en in l1_ments.values()),
                            default=_INF)
                    if len(l1_ments) >= l1_cap:
                        raise RuntimeError(
                            f"{l1_mshr.name}: insert into full MSHR")
                l1_ments[block] = (ready, bit1)
                l1m_ins += 1
                if ready < l1_mshr._floor:
                    l1_mshr._floor = ready
                # --- _fill_l1(block, dirty=is_write) -------------------
                existing = l1_set.get(block)
                if existing is not None:
                    existing.dirty = existing.dirty or is_write
                    existing.prefetch = False
                else:
                    pol = l1_pols[s1]
                    st = pol._stamps
                    evicted_line = None
                    if len(l1_set) >= l1_ways:
                        victim = min(st, key=st.__getitem__)
                        evicted_line = l1_set.pop(victim)
                        del st[victim]
                        if evicted_line.dirty:
                            l1d.writebacks += 1
                    l1_set[block] = CacheLine(dirty=is_write)
                    c = pol._clock + 1
                    pol._clock = c
                    st[block] = c
                    if evicted_line is not None and evicted_line.dirty:
                        writeback_l2(victim)
        # --- Core.step epilogue ---------------------------------------
        if is_write:
            complete = issue_at + 1.0
        else:
            complete = ready
            h_load_lat += complete - issue_at
            last_load_complete = complete
        inflight_append((complete, entries))
        occupancy += entries
        instructions += entries
        memory_accesses += 1
        if on_record is not None and i != last:
            on_record(i)

    # --- flush batched counters (must mirror the loads above) ---------
    core.fetch = fetch
    core.retire_frontier = retire_frontier
    core.occupancy = occupancy
    core.last_load_complete = last_load_complete
    core.instructions = instructions
    core.memory_accesses = memory_accesses
    core.stall_cycles = stall_cycles
    h.loads = h_loads
    h.stores = h_stores
    h.load_latency_sum = h_load_lat
    h.l2_demand_latency_sum = l2_lat_sum
    h.l2_demand_latency_count = l2_lat_cnt
    h.llc_demand_latency_sum = l3_lat_sum
    h.llc_demand_latency_count = l3_lat_cnt
    h.pf_issued_l2 = pf_l2
    h.pf_issued_llc = pf_llc
    h.pf_dropped_mshr = pf_drop
    h.pf_redundant = pf_red
    l1d.demand_accesses = l1_dem
    l1d.demand_hits = l1_hit
    l1d.demand_misses = l1_miss
    l1d.useful_prefetches = l1_use
    l2c.demand_accesses = l2_dem
    l2c.demand_hits = l2_hit
    l2c.demand_misses = l2_missc
    l2c.useful_prefetches = l2_use
    llc.demand_accesses = l3_dem
    llc.demand_hits = l3_hit
    llc.demand_misses = l3_missc
    llc.useful_prefetches = l3_use
    dtlb._clock = dt_clock
    dtlb.hits = dt_hits
    dtlb.misses = dt_miss
    dtlb.hits_2m = dt_hits2m
    ppm.annotations = ppm_ann
    l1_mshr.stalls = l1m_stalls
    l1_mshr.merges = l1m_merges
    l1_mshr.inserts = l1m_ins
    l1_pq.merges = l1p_merges
    if on_record is not None:
        on_record(last)
