"""Supervised execution for the batch engine: watchdogs, retries, fallback.

``repro.sim.runner.run_batch`` delegates the actual execution of cache
misses to :func:`supervise`, which runs every request under supervision:

- **Watchdog** — each run gets ``REPRO_RUN_TIMEOUT`` seconds (unset or
  <= 0 disables).  In a pool, workers report ``(run index, pid)`` over a
  queue when they pick up a task, so the parent can time each run and
  ``SIGKILL`` a hung worker.  Serially, a ``SIGALRM`` interval timer
  raises a ``BaseException``-derived timeout the simulator cannot
  swallow (POSIX main thread only; otherwise serial runs are untimed).
- **Retry** — transient failures retry with exponential backoff and
  deterministic jitter up to ``REPRO_MAX_RETRIES`` extra attempts.
  *Permanent* errors (``ValueError``/``TypeError``/... — bad requests,
  malformed traces) fail immediately.  Timeouts are terminal by default;
  with mid-run snapshots enabled (``REPRO_SNAPSHOT_EVERY``) they retry
  like other transients — a resumed attempt continues from the last
  checkpoint instead of re-spending the whole budget — and finalize with
  ``TIMEOUT`` status when retries are exhausted.
- **Pool degradation** — a ``BrokenProcessPool`` rebuilds the pool once;
  a second break degrades to in-process serial execution.  Runs that
  were merely in flight when the pool broke are requeued without an
  attempt penalty; the penalty is charged only when exactly one run was
  started-and-unfinished (unambiguous attribution) and the break was not
  caused by our own watchdog kill.
- **Structured outcomes** — every request resolves to a
  :class:`RunOutcome` (``ok``/``failed``/``timeout``/``skipped``) with a
  :class:`RunFailure` record (exception class, traceback, attempts,
  worker pid) on failure, and completed runs are checkpointed through an
  ``on_result`` callback as they finish, so a killed batch resumes from
  the on-disk cache.

Exceptions raised by a run cross the process boundary as a payload dict
(with the original exception pickled best-effort) rather than through
the future, so an ordinary failure can never poison the pool.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
import traceback as traceback_mod
import warnings
import zlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

from repro.sim import config, faults
from repro.sim.metrics import RunMetrics

DEFAULT_MAX_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05

#: Exception types that no retry can cure: bad requests, bad traces.
PERMANENT_EXCEPTIONS = (ValueError, TypeError, KeyError, AttributeError,
                        NotImplementedError)

OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"
SKIPPED = "skipped"


def max_retries() -> int:
    """Extra attempts per run: ``REPRO_MAX_RETRIES`` (default 2)."""
    return max(0, config.env_int("REPRO_MAX_RETRIES", DEFAULT_MAX_RETRIES))


def run_timeout() -> Optional[float]:
    """Per-run watchdog seconds: ``REPRO_RUN_TIMEOUT`` (unset/<=0: off)."""
    value = config.env_float("REPRO_RUN_TIMEOUT", 0.0)
    return value if value > 0 else None


def backoff_delay(run_index: int, attempt: int,
                  base: Optional[float] = None) -> float:
    """Exponential backoff with deterministic per-(run, attempt) jitter."""
    if base is None:
        base = config.env_float("REPRO_RETRY_BACKOFF", DEFAULT_BACKOFF_S)
    jitter = zlib.crc32(f"{run_index}:{attempt}".encode()) % 1024 / 1024
    return base * (2 ** attempt) * (1.0 + jitter)


# ----------------------------------------------------------------------
# Outcome records
# ----------------------------------------------------------------------

@dataclass
class RunFailure:
    """Structured record of why a run failed."""

    kind: str                 # "error" | "crash" | "timeout"
    exc_type: str
    message: str
    traceback: str = ""
    attempts: int = 1
    worker_pid: Optional[int] = None
    run_index: int = -1
    permanent: bool = False
    exc_bytes: Optional[bytes] = field(default=None, repr=False)

    def describe(self) -> str:
        pid = f" pid={self.worker_pid}" if self.worker_pid else ""
        return (f"{self.kind}: {self.exc_type}: {self.message} "
                f"(attempt {self.attempts}{pid})")

    def to_dict(self) -> dict:
        """JSON-safe view of the failure (``exc_bytes`` is dropped —
        pickled exceptions don't survive serialization boundaries)."""
        return {
            "kind": self.kind,
            "exc_type": self.exc_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "worker_pid": self.worker_pid,
            "run_index": self.run_index,
            "permanent": self.permanent,
        }


class RunFailureError(RuntimeError):
    """Raised by strict batches for failures whose original exception
    could not be transported across the process boundary."""


class RunTimeoutError(RunFailureError):
    """Raised by strict batches when a run exceeded the watchdog."""


@dataclass
class RunOutcome:
    """Final disposition of one scheduled run (or cached request)."""

    status: str                       # OK | FAILED | TIMEOUT | SKIPPED
    metrics: Optional[RunMetrics] = None
    failure: Optional[RunFailure] = None
    attempts: int = 0
    source: str = "simulated"         # simulated | memo | disk | dedupe

    @property
    def ok(self) -> bool:
        return self.status == OK


@dataclass
class SupervisorStats:
    """What the supervision layer had to do for one batch."""

    retries: int = 0
    timeouts: int = 0
    failed: int = 0
    crashes: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False


def _label(request) -> str:
    workload = getattr(request, "workload", request)
    workload = getattr(workload, "name", workload)
    variant = getattr(request, "variant", "")
    return f"{workload}/{variant}" if variant else str(workload)


@dataclass
class BatchResult:
    """Per-request outcomes of a non-strict batch, in request order."""

    outcomes: List[RunOutcome]
    requests: List = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def metrics(self) -> List[Optional[RunMetrics]]:
        return [o.metrics for o in self.outcomes]

    @property
    def failures(self) -> List[Tuple[int, RunFailure]]:
        return [(i, o.failure) for i, o in enumerate(self.outcomes)
                if o.failure is not None]

    def counts(self) -> Dict[str, int]:
        counts = {OK: 0, FAILED: 0, TIMEOUT: 0, SKIPPED: 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def summary_line(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in (FAILED, TIMEOUT, SKIPPED)
                 if counts[s]]
        detail = f" ({', '.join(parts)})" if parts else ""
        return (f"batch: {counts[OK]}/{len(self.outcomes)} ok{detail}")

    def describe_failures(self) -> List[str]:
        lines = []
        for index, failure in self.failures:
            label = (_label(self.requests[index])
                     if index < len(self.requests) else f"request {index}")
            lines.append(f"  FAILED {label}: {failure.describe()}")
        return lines


def reraise(outcome: RunOutcome) -> None:
    """Re-raise a failed outcome's original exception (strict mode)."""
    failure = outcome.failure
    if failure is None:
        raise RunFailureError("run failed without a failure record")
    if failure.exc_bytes is not None:
        try:
            exc = pickle.loads(failure.exc_bytes)
        except Exception:
            exc = None
        if isinstance(exc, BaseException):
            raise exc
    if outcome.status == TIMEOUT:
        raise RunTimeoutError(failure.describe())
    raise RunFailureError(f"{failure.exc_type}: {failure.message}\n"
                          f"{failure.traceback}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_REPORT_QUEUE = None


def _pool_worker_init(report_queue) -> None:
    """Initializer for supervised pool workers."""
    global _REPORT_QUEUE
    _REPORT_QUEUE = report_queue
    os.environ["REPRO_IN_WORKER"] = "1"
    faults.mark_pool_worker()


def _failure_payload(exc: BaseException, pid: int,
                     kind: str = "error") -> dict:
    permanent = (isinstance(exc, PERMANENT_EXCEPTIONS)
                 and not isinstance(exc, faults.InjectedError))
    try:
        exc_bytes = pickle.dumps(exc)
    except Exception:
        exc_bytes = None
    return {
        "ok": False,
        "kind": kind,
        "pid": pid,
        "exc_type": type(exc).__name__,
        "message": str(exc),
        "traceback": traceback_mod.format_exc(),
        "permanent": permanent,
        "exc_bytes": exc_bytes,
    }


def _worker_run(task: tuple) -> dict:
    """Execute one (index, request, attempt, actions) task in a worker.

    All ordinary exceptions are converted into a payload dict so they
    never travel through the future (and can never poison the pool).
    """
    index, request, attempt, actions = task
    pid = os.getpid()
    if _REPORT_QUEUE is not None:
        try:
            _REPORT_QUEUE.put(("start", index, pid, attempt))
        except Exception:
            pass
    from repro.sim.runner import _execute
    faults.arm(actions, attempt)
    try:
        metrics = _execute(request)
        return {"ok": True, "pid": pid, "metrics": metrics}
    except faults.InjectedCrash as exc:
        return _failure_payload(exc, pid, kind="crash")
    except Exception as exc:
        return _failure_payload(exc, pid)
    finally:
        faults.disarm()


def _failure_from_payload(payload: dict, run_index: int,
                          attempts: int) -> RunFailure:
    return RunFailure(
        kind=payload["kind"],
        exc_type=payload["exc_type"],
        message=payload["message"],
        traceback=payload.get("traceback", ""),
        attempts=attempts,
        worker_pid=payload.get("pid"),
        run_index=run_index,
        permanent=payload.get("permanent", False),
        exc_bytes=payload.get("exc_bytes"),
    )


# ----------------------------------------------------------------------
# Serial watchdog (SIGALRM)
# ----------------------------------------------------------------------

class _SerialTimeout(BaseException):
    """Raised by the SIGALRM watchdog; BaseException so no ``except
    Exception`` inside the simulator can swallow it."""


def _serial_watchdog_available(warn: bool = False) -> bool:
    """Whether the SIGALRM serial watchdog can be armed here.

    Signal handlers can only be installed on the POSIX main thread.  With
    ``warn=True``, an unarmable watchdog (while a timeout is configured)
    emits a RuntimeWarning instead of silently running untimed — the
    caller asked for a watchdog it cannot have.
    """
    available = (hasattr(signal, "SIGALRM")
                 and threading.current_thread() is threading.main_thread())
    if not available and warn:
        warnings.warn(
            "serial watchdog disabled: SIGALRM requires the POSIX main "
            "thread; serial runs will not be timed",
            RuntimeWarning, stacklevel=3)
    return available


def _execute_with_alarm(execute: Callable, request, timeout: float):
    def _on_alarm(signum, frame):
        raise _SerialTimeout()

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (ValueError, OSError):
        # Lost the main thread between the availability probe and now
        # (or the platform refuses): run untimed rather than crash.
        warnings.warn(
            "serial watchdog disabled: SIGALRM handler could not be "
            "installed; this run is not timed",
            RuntimeWarning, stacklevel=2)
        return execute(request)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute(request)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Pool construction (module-level so tests can monkeypatch it)
# ----------------------------------------------------------------------

def _make_pool(width: int):
    """Build a supervised pool plus its worker->parent report queue."""
    ctx = mp.get_context()
    report_queue = ctx.Queue()
    pool = ProcessPoolExecutor(max_workers=width, mp_context=ctx,
                               initializer=_pool_worker_init,
                               initargs=(report_queue,))
    return pool, report_queue


# ----------------------------------------------------------------------
# The supervisor
# ----------------------------------------------------------------------

#: Pool lifetimes before degrading to serial: the initial pool plus one
#: rebuild, per the failure-semantics contract.
_MAX_POOL_LIVES = 2


class _Supervisor:
    def __init__(self, requests: Sequence, width: int,
                 timeout: Optional[float], retries: int,
                 plan: Optional[faults.FaultPlan],
                 on_result: Optional[Callable[[int, RunMetrics], None]],
                 fail_fast: bool):
        self.requests = list(requests)
        self.width = width
        self.timeout = timeout
        self.retries = retries
        self.plan = plan
        self.on_result = on_result
        self.fail_fast = fail_fast
        n = len(self.requests)
        self.outcomes: List[Optional[RunOutcome]] = [None] * n
        self.attempts = [0] * n
        self.not_before = [0.0] * n
        self.stats = SupervisorStats()
        self._stop_new = False
        self._kill_initiated = False
        # With mid-run snapshots on, a timed-out run retries and resumes
        # from its last checkpoint; without them a retry would re-spend
        # the whole budget just to time out again, so it stays terminal.
        from repro.sim import snapshot
        self._retry_timeouts = snapshot.snapshot_enabled()

    # -- helpers -------------------------------------------------------

    def _actions(self, index: int) -> Tuple[faults.FaultAction, ...]:
        if self.plan is None:
            return ()
        return self.plan.checkpoint_actions(index)

    def _unfinished(self) -> List[int]:
        return [i for i, o in enumerate(self.outcomes) if o is None]

    def _eligible(self, now: float) -> List[int]:
        if self._stop_new:
            return []
        return [i for i in self._unfinished() if self.not_before[i] <= now]

    def _finalize_ok(self, index: int, metrics: RunMetrics) -> None:
        self.attempts[index] += 1
        self.outcomes[index] = RunOutcome(
            status=OK, metrics=metrics, attempts=self.attempts[index])
        if self.on_result is not None:
            self.on_result(index, metrics)

    def _finalize_failure(self, index: int, failure: RunFailure,
                          status: str = FAILED) -> None:
        failure.attempts = self.attempts[index]
        failure.run_index = index
        self.outcomes[index] = RunOutcome(
            status=status, failure=failure, attempts=self.attempts[index])
        if status == TIMEOUT:
            self.stats.timeouts += 1
        else:
            self.stats.failed += 1
            if failure.kind == "crash":
                self.stats.crashes += 1
        if self.fail_fast:
            self._stop_new = True

    def _record_attempt_failure(self, index: int,
                                failure: RunFailure) -> None:
        """Charge one failed attempt; schedule a retry or finalize."""
        self.attempts[index] += 1
        transient = not failure.permanent
        if transient and self.attempts[index] <= self.retries:
            self.stats.retries += 1
            self.not_before[index] = (
                time.monotonic()
                + backoff_delay(index, self.attempts[index] - 1))
            return
        self._finalize_failure(
            index, failure,
            status=TIMEOUT if failure.kind == "timeout" else FAILED)

    def _timeout_failure(self, index: int,
                         pid: Optional[int]) -> RunFailure:
        return RunFailure(
            kind="timeout", exc_type="TimeoutError",
            message=f"run exceeded the {self.timeout:g}s watchdog",
            worker_pid=pid, run_index=index)

    # -- pool phase ----------------------------------------------------

    def _pool_phase(self) -> None:
        pool_lives = 0
        while self._unfinished() and not self._stop_new:
            if pool_lives >= _MAX_POOL_LIVES:
                return  # degrade to serial
            try:
                pool, report_queue = _make_pool(self.width)
            except OSError:
                return
            if pool_lives > 0:
                self.stats.pool_rebuilds += 1
            pool_lives += 1
            self._kill_initiated = False
            broke = self._drive(pool, report_queue)
            if not broke:
                return

    def _drive(self, pool, report_queue) -> bool:
        """Run the batch on one pool lifetime; True if the pool broke."""
        futures: Dict[object, int] = {}
        submitted = set()
        running: Dict[int, Tuple[int, float]] = {}   # idx -> (pid, t0)
        broke = False
        try:
            while True:
                now = time.monotonic()
                for index in self._eligible(now):
                    if index in submitted:
                        continue
                    task = (index, self.requests[index],
                            self.attempts[index], self._actions(index))
                    try:
                        future = pool.submit(_worker_run, task)
                    except (BrokenProcessPool, RuntimeError):
                        broke = True
                        break
                    futures[future] = index
                    submitted.add(index)
                if broke:
                    break
                # Wait on every uncollected future: wait() hands back
                # already-done ones immediately, so a future that
                # completed while the parent was busy (checkpointing,
                # draining reports) is collected on the next pass
                # instead of being orphaned.
                pending = list(futures)
                if not pending:
                    waiting = [i for i in self._unfinished()
                               if i not in submitted]
                    if not waiting or self._stop_new:
                        break
                    # Everything left is backing off: sleep to the
                    # soonest retry release.
                    soonest = min(self.not_before[i] for i in waiting)
                    time.sleep(max(0.0, min(soonest - now, 0.5)))
                    continue
                done, _ = wait(pending, timeout=0.05,
                               return_when=FIRST_COMPLETED)
                self._drain_reports(report_queue, running)
                for future in done:
                    index = futures.pop(future)
                    running.pop(index, None)
                    if self.outcomes[index] is not None:
                        continue  # watchdog already resolved it
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broke = True
                        submitted.discard(index)   # requeue, no penalty
                        continue
                    if payload.get("ok"):
                        self._finalize_ok(index, payload["metrics"])
                    else:
                        self._record_attempt_failure(
                            index, _failure_from_payload(
                                payload, index, self.attempts[index] + 1))
                        if self.outcomes[index] is None:
                            submitted.discard(index)  # retry later
                if broke:
                    break
                self._reap_hung(running, submitted)
        finally:
            self._drain_reports(report_queue, running)
            if broke:
                self._harvest_done(futures, running)
                self._attribute_break(futures, submitted, running)
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            try:
                report_queue.close()
                report_queue.cancel_join_thread()
            except Exception:
                pass
        return broke

    def _drain_reports(self, report_queue,
                       running: Dict[int, Tuple[int, float]]) -> None:
        while True:
            try:
                kind, index, pid, attempt = report_queue.get_nowait()
            except Exception:
                return
            # Reports travel on a separate queue from results, so a
            # "start" can arrive after that attempt already failed and
            # a retry was scheduled.  Only the report matching the
            # current attempt may (re)arm the watchdog — a stale one
            # would reset t0 and aim a future SIGKILL at a pid that is
            # by now running a different task.
            if (kind == "start" and self.outcomes[index] is None
                    and attempt == self.attempts[index]):
                running[index] = (pid, time.monotonic())

    def _harvest_done(self, futures: Dict[object, int],
                      running: Dict[int, Tuple[int, float]]) -> None:
        """Collect payloads that completed before a pool break.

        A crash breaks only unfinished futures; payloads already in
        hand must not be discarded with the pool.  Successes would be
        re-simulated, and failures would lose their record and attempt
        charge — letting a permanent error re-execute for free in the
        next pool lifetime instead of failing immediately.
        """
        for future, index in list(futures.items()):
            if not future.done() or self.outcomes[index] is not None:
                continue
            try:
                payload = future.result()
            except Exception:
                continue
            running.pop(index, None)
            futures.pop(future)
            if payload.get("ok"):
                self._finalize_ok(index, payload["metrics"])
            else:
                self._record_attempt_failure(
                    index, _failure_from_payload(
                        payload, index, self.attempts[index] + 1))

    def _reap_hung(self, running: Dict[int, Tuple[int, float]],
                   submitted: Optional[set] = None) -> None:
        """SIGKILL workers whose current run exceeded the watchdog."""
        if self.timeout is None:
            return
        now = time.monotonic()
        for index, (pid, started) in list(running.items()):
            if self.outcomes[index] is not None:
                running.pop(index, None)
                continue
            if now - started > self.timeout:
                if self._retry_timeouts:
                    # Snapshots enabled: charge the attempt, retry —
                    # the resumed attempt continues from the last
                    # checkpoint the killed worker flushed to disk.
                    self._record_attempt_failure(
                        index, self._timeout_failure(index, pid))
                    if self.outcomes[index] is None and submitted is not None:
                        submitted.discard(index)
                else:
                    self.attempts[index] += 1
                    self._finalize_failure(
                        index, self._timeout_failure(index, pid),
                        status=TIMEOUT)
                running.pop(index, None)
                self._kill_initiated = True
                try:
                    os.kill(pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass

    def _attribute_break(self, futures: Dict[object, int],
                         submitted: set,
                         running: Dict[int, Tuple[int, float]]) -> None:
        """Requeue in-flight victims of a pool break.

        An attempt penalty is charged only when exactly one run was
        started-and-unfinished at break time (the crash is unambiguously
        its doing) and the break was not our own watchdog kill.
        Everything else is requeued for free — an innocent neighbour
        must not burn its retry budget on someone else's crash.
        """
        victims = [i for i in running
                   if self.outcomes[i] is None and i in submitted]
        for future, index in list(futures.items()):
            if self.outcomes[index] is None:
                submitted.discard(index)
        if self._kill_initiated or len(victims) != 1:
            return
        index = victims[0]
        pid = running[index][0]
        self._record_attempt_failure(index, RunFailure(
            kind="crash", exc_type="BrokenProcessPool",
            message="worker process died unexpectedly",
            worker_pid=pid, run_index=index))

    # -- serial phase --------------------------------------------------

    def _serial_phase(self, fallback: bool) -> None:
        from repro.sim.runner import _execute

        remaining = self._unfinished()
        if fallback and remaining and not self._stop_new:
            self.stats.serial_fallback = True
        use_alarm = (self.timeout is not None
                     and _serial_watchdog_available(warn=True))
        progress = True
        while remaining and progress:
            progress = False
            for index in list(remaining):
                if self.outcomes[index] is not None or self._stop_new:
                    continue
                delay = self.not_before[index] - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                faults.arm(self._actions(index), self.attempts[index])
                try:
                    if use_alarm:
                        metrics = _execute_with_alarm(
                            _execute, self.requests[index], self.timeout)
                    else:
                        metrics = _execute(self.requests[index])
                except _SerialTimeout:
                    if self._retry_timeouts:
                        self._record_attempt_failure(
                            index,
                            self._timeout_failure(index, os.getpid()))
                    else:
                        self.attempts[index] += 1
                        self._finalize_failure(
                            index,
                            self._timeout_failure(index, os.getpid()),
                            status=TIMEOUT)
                except faults.InjectedCrash as exc:
                    self._record_attempt_failure(
                        index, _failure_from_payload(
                            _failure_payload(exc, os.getpid(),
                                             kind="crash"),
                            index, self.attempts[index] + 1))
                except Exception as exc:
                    self._record_attempt_failure(
                        index, _failure_from_payload(
                            _failure_payload(exc, os.getpid()),
                            index, self.attempts[index] + 1))
                else:
                    self._finalize_ok(index, metrics)
                finally:
                    faults.disarm()
                progress = True
            remaining = self._unfinished()
            if self._stop_new:
                break

    # -- entry ---------------------------------------------------------

    def run(self) -> Tuple[List[RunOutcome], SupervisorStats]:
        if self.width > 1 and self.requests:
            self._pool_phase()
        self._serial_phase(fallback=self.width > 1)
        for index in self._unfinished():
            self.outcomes[index] = RunOutcome(
                status=SKIPPED, attempts=self.attempts[index])
        return list(self.outcomes), self.stats


def supervise(requests: Sequence, width: int,
              timeout: Optional[float], retries: int,
              plan: Optional[faults.FaultPlan] = None,
              on_result: Optional[Callable[[int, RunMetrics], None]] = None,
              fail_fast: bool = False
              ) -> Tuple[List[RunOutcome], SupervisorStats]:
    """Execute *requests* under supervision; see the module docstring.

    Returns one :class:`RunOutcome` per request (in order) plus the
    :class:`SupervisorStats` describing retries/timeouts/degradations.
    ``on_result(index, metrics)`` is invoked as each run completes so
    the caller can checkpoint incrementally.
    """
    supervisor = _Supervisor(requests, width, timeout, retries, plan,
                             on_result, fail_fast)
    return supervisor.run()
