"""``repro doctor``: one scan-and-heal pass over the durable universe.

Every layer already *tolerates* damage locally — the cache quarantines
torn entries on read, snapshots refuse to resume from doubtful bytes,
the store never downgrades an ok row, stale leases get reclaimed — but
each of those heals lazily, on the next unlucky reader.  The doctor
makes healing eager and global: one command (or one daemon startup)
walks the whole durable state, reports every finding, and with
``repair=True`` fixes what has a safe fix:

====================  ==========================  ======================
layer                 finding                     repair
====================  ==========================  ======================
cache                 corrupt entry               quarantine
cache                 stale entry (old salt)      quarantine
cache                 orphaned writer ``*.tmp``   unlink
snapshot              corrupt/truncated file      quarantine
snapshot              stale file (old salt)       unlink (unresumable)
snapshot              orphaned writer ``*.tmp``   unlink
store                 sqlite integrity failure    move DB aside (rebuilt
                                                  from cache by sync)
store                 rows missing vs. cache      ``sync_from_cache``
lease                 stale claim (> TTL)         unlink
member                corrupt cluster record      unlink (re-published
                                                  on next heartbeat)
member                stale cluster record        unlink
member                orphaned writer ``*.tmp``   unlink
====================  ==========================  ======================

Nothing is ever deleted that could hold evidence (corrupt bytes go to
quarantine; a broken database is renamed ``*.corrupt.<pid>``, not
dropped) and nothing is repaired that might belong to a live writer
(temp files younger than the orphan age, leases younger than the TTL).

The scan itself never injects faults: :func:`diagnose` runs with the
``REPRO_IO_FAULTS`` shim disarmed for the duration, so the doctor can
heal the damage an armed plan created without tripping over it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.sim import cache as disk_cache
from repro.sim import iofaults
from repro.sim import snapshot as snapshot_store

DEFAULT_LEASE_TTL_S = 300.0


@dataclass
class DoctorFinding:
    """One problem the scan surfaced (and possibly repaired)."""

    layer: str          # cache | snapshot | store | lease | member
    kind: str           # corrupt | stale | tmp-orphan | divergence | ...
    path: str
    detail: str = ""
    repaired: bool = False
    action: str = ""    # what the repair did (or would do)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        state = f"repaired: {self.action}" if self.repaired else (
            f"repair: {self.action}" if self.action else "no repair")
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{self.layer}/{self.kind}] {self.path}{detail} — {state}"


@dataclass
class DoctorReport:
    """Structured outcome of one doctor pass (``repro doctor --json``)."""

    cache_dir: str = ""
    repair: bool = False
    scanned: dict = field(default_factory=dict)   # layer -> items seen
    findings: List[DoctorFinding] = field(default_factory=list)
    quarantine: dict = field(default_factory=dict)  # layer -> held files
    elapsed_s: float = 0.0

    @property
    def clean(self) -> bool:
        """No findings at all — the durable state needs nothing."""
        return not self.findings

    @property
    def healthy(self) -> bool:
        """Nothing left unrepaired (clean, or every finding was fixed)."""
        return all(f.repaired for f in self.findings)

    def count(self, layer: Optional[str] = None,
              kind: Optional[str] = None) -> int:
        return sum(1 for f in self.findings
                   if (layer is None or f.layer == layer)
                   and (kind is None or f.kind == kind))

    def to_dict(self) -> dict:
        return {
            "cache_dir": self.cache_dir,
            "repair": self.repair,
            "clean": self.clean,
            "healthy": self.healthy,
            "scanned": dict(self.scanned),
            "findings": [f.to_dict() for f in self.findings],
            "quarantine": dict(self.quarantine),
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def summary(self) -> str:
        if self.clean:
            return (f"doctor: clean — "
                    f"{sum(self.scanned.values())} items scanned, "
                    f"0 findings")
        repaired = sum(1 for f in self.findings if f.repaired)
        state = ("healthy" if self.healthy
                 else f"{len(self.findings) - repaired} unrepaired")
        return (f"doctor: {len(self.findings)} findings "
                f"({repaired} repaired, {state}) across "
                f"{sum(self.scanned.values())} scanned items")

    def describe(self) -> str:
        lines = [f"cache dir : {self.cache_dir}",
                 f"mode      : {'repair' if self.repair else 'scan-only'}"]
        for layer in sorted(self.scanned):
            held = self.quarantine.get(layer)
            extra = f" | quarantine holds {held}" if held else ""
            lines.append(f"{layer:9s} : {self.scanned[layer]} scanned, "
                         f"{self.count(layer)} findings{extra}")
        for finding in self.findings:
            lines.append("  " + finding.describe())
        lines.append(self.summary())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Layer scans
# ----------------------------------------------------------------------

def _scan_cache(report: DoctorReport, repair: bool,
                tmp_age_s: float) -> None:
    objects = disk_cache.cache_dir() / "objects"
    report.quarantine["cache"] = disk_cache.count_quarantine(
        disk_cache.quarantine_dir())
    scanned = 0
    if objects.is_dir():
        for path in sorted(objects.glob("*/*.json")):
            scanned += 1
            status = disk_cache._entry_status(path)
            if status == "ok":
                continue
            finding = DoctorFinding(
                layer="cache", kind=status, path=str(path),
                action="quarantine")
            if repair:
                dest = disk_cache._quarantine(path)
                finding.repaired = True
                finding.action = (f"quarantined to {dest}" if dest
                                  else "unlinked (quarantine failed)")
            report.findings.append(finding)
        for path in disk_cache.iter_tmp_orphans(objects, tmp_age_s):
            finding = DoctorFinding(
                layer="cache", kind="tmp-orphan", path=str(path),
                detail="leaked by a crashed writer", action="unlink")
            if repair:
                try:
                    path.unlink()
                    finding.repaired = True
                    finding.action = "unlinked"
                except OSError as exc:
                    finding.detail = str(exc)
            report.findings.append(finding)
    report.scanned["cache"] = scanned


def _snapshot_status(path: Path) -> str:
    """Classify one snapshot: ok | stale | corrupt (full body check)."""
    header = snapshot_store.read_header(path)
    if header is None:
        return "corrupt"
    if (header.get("version") != snapshot_store.SNAPSHOT_VERSION
            or header.get("salt") != snapshot_store._salt()):
        return "stale"
    if (not isinstance(header.get("access_index"), int)
            or not isinstance(header.get("length"), int)):
        return "corrupt"
    try:
        raw = path.read_bytes()
        newline = raw.index(b"\n", len(snapshot_store.MAGIC))
        body = raw[newline + 1:]
    except (OSError, ValueError):
        return "corrupt"
    if (len(body) != header["length"]
            or hashlib.sha256(body).hexdigest() != header.get("sha256")):
        return "corrupt"
    return "ok"


def _scan_snapshots(report: DoctorReport, repair: bool,
                    tmp_age_s: float) -> None:
    objects = snapshot_store.snapshot_dir() / "objects"
    report.quarantine["snapshot"] = disk_cache.count_quarantine(
        snapshot_store.quarantine_dir())
    scanned = 0
    if objects.is_dir():
        for path in sorted(objects.glob("*/*.snap")):
            scanned += 1
            status = _snapshot_status(path)
            if status == "ok":
                continue
            # A torn snapshot is evidence -> quarantine; a stale one is
            # merely unresumable re-computable state -> unlink.
            action = "quarantine" if status == "corrupt" else "unlink"
            finding = DoctorFinding(
                layer="snapshot", kind=status, path=str(path),
                action=action)
            if repair:
                if status == "corrupt":
                    dest = snapshot_store._quarantine(path)
                    finding.repaired = True
                    finding.action = (f"quarantined to {dest}" if dest
                                      else "unlinked (quarantine failed)")
                else:
                    try:
                        path.unlink()
                        finding.repaired = True
                        finding.action = "unlinked"
                    except OSError as exc:
                        finding.detail = str(exc)
            report.findings.append(finding)
        for path in disk_cache.iter_tmp_orphans(objects, tmp_age_s):
            finding = DoctorFinding(
                layer="snapshot", kind="tmp-orphan", path=str(path),
                detail="leaked by a crashed writer", action="unlink")
            if repair:
                try:
                    path.unlink()
                    finding.repaired = True
                    finding.action = "unlinked"
                except OSError as exc:
                    finding.detail = str(exc)
            report.findings.append(finding)
    report.scanned["snapshot"] = scanned


def _scan_store(report: DoctorReport, repair: bool) -> None:
    """sqlite integrity + store-vs-cache divergence, per campaign."""
    from repro.campaign.grid import Campaign, CampaignSpecError
    from repro.campaign.store import CampaignStore, store_path

    path = store_path()
    scanned = 0
    if not path.exists():
        report.scanned["store"] = scanned
        return
    scanned += 1

    # Integrity first: a database sqlite itself cannot read is moved
    # aside (never deleted); the next healthy writer recreates the
    # schema and sync repopulates every row from the cache.
    try:
        conn = sqlite3.connect(str(path), timeout=30.0)
        try:
            row = conn.execute("PRAGMA quick_check").fetchone()
        finally:
            conn.close()
        intact = row is not None and row[0] == "ok"
        detail = "" if intact else f"quick_check: {row[0] if row else '?'}"
    except sqlite3.Error as exc:
        intact = False
        detail = f"unreadable: {exc}"
    if not intact:
        finding = DoctorFinding(
            layer="store", kind="corrupt", path=str(path), detail=detail,
            action="move aside; rebuilt from cache on next sync")
        if repair:
            aside = path.with_name(f"{path.name}.corrupt.{os.getpid()}")
            try:
                os.replace(path, aside)
                for suffix in ("-wal", "-shm"):
                    try:
                        os.unlink(str(path) + suffix)
                    except OSError:
                        pass
                finding.repaired = True
                finding.action = f"moved aside to {aside}"
            except OSError as exc:
                finding.detail = f"{detail}; move failed: {exc}"
        report.findings.append(finding)
        report.scanned["store"] = scanned
        return

    # Divergence: any registered campaign whose cache-resident results
    # are not reflected in the store (the store is an index over the
    # content-addressed cache; missing rows are pure repair targets).
    try:
        with CampaignStore(path) as store:
            for meta in store.campaigns():
                scanned += 1
                spec_row = store._conn.execute(
                    "SELECT spec_json FROM campaigns "
                    "WHERE campaign_id = ?",
                    (meta["campaign_id"],)).fetchone()
                if spec_row is None:
                    continue
                try:
                    campaign = Campaign.from_dict(
                        json.loads(spec_row[0]))
                except (CampaignSpecError, ValueError, TypeError, KeyError):
                    report.findings.append(DoctorFinding(
                        layer="store", kind="bad-spec",
                        path=str(path),
                        detail=f"campaign {meta['campaign_id']}: "
                               f"unparseable spec_json",
                        action="no safe repair (rows kept)"))
                    continue
                divergent = [
                    cell for cell in store.missing(campaign)
                    if disk_cache.load(cell.key) is not None]
                if not divergent:
                    continue
                finding = DoctorFinding(
                    layer="store", kind="divergence", path=str(path),
                    detail=(f"campaign {campaign.name}: "
                            f"{len(divergent)} cache-resident cells "
                            f"missing from the store"),
                    action="sync_from_cache")
                if repair:
                    ingested = store.sync_from_cache(campaign)
                    finding.repaired = True
                    finding.action = (f"sync_from_cache ingested "
                                      f"{ingested} rows")
                report.findings.append(finding)
    except (sqlite3.Error, OSError) as exc:
        report.findings.append(DoctorFinding(
            layer="store", kind="scan-error", path=str(path),
            detail=str(exc), action="no repair"))
    report.scanned["store"] = scanned


def _scan_leases(report: DoctorReport, repair: bool,
                 lease_ttl_s: float) -> None:
    campaigns_root = disk_cache.cache_dir() / "campaigns"
    scanned = 0
    now = time.time()
    if campaigns_root.is_dir():
        for path in sorted(campaigns_root.glob("*/leases/*.lease")):
            scanned += 1
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue            # vanished mid-scan: released by owner
            if age <= lease_ttl_s:
                continue
            finding = DoctorFinding(
                layer="lease", kind="stale", path=str(path),
                detail=f"age {age:.0f}s > ttl {lease_ttl_s:.0f}s",
                action="unlink")
            if repair:
                try:
                    path.unlink()
                    finding.repaired = True
                    finding.action = "unlinked"
                except OSError as exc:
                    finding.detail = str(exc)
            report.findings.append(finding)
        # Takeover tombstones a crashed reclaimer left behind.
        for path in sorted(campaigns_root.glob("*/leases/*.stale.*")):
            scanned += 1
            finding = DoctorFinding(
                layer="lease", kind="tombstone", path=str(path),
                detail="leftover takeover marker", action="unlink")
            if repair:
                try:
                    path.unlink()
                    finding.repaired = True
                    finding.action = "unlinked"
                except OSError as exc:
                    finding.detail = str(exc)
            report.findings.append(finding)
    report.scanned["lease"] = scanned


def _scan_members(report: DoctorReport, repair: bool,
                  tmp_age_s: float) -> None:
    """Cluster membership records in ``<cache>/cluster/members``.

    A record a replica stopped renewing (SIGKILL, wedge) or tore
    mid-publish is pure liveness metadata: unlinking is always safe
    because a live daemon re-publishes on its next heartbeat.
    """
    from repro.serve import cluster as cluster_mod

    root = cluster_mod.members_dir()
    ttl_s = cluster_mod.member_ttl()
    scanned = 0
    now = time.time()
    if root.is_dir():
        for path in sorted(root.glob("*.json")):
            scanned += 1
            kind = detail = None
            try:
                age = now - path.stat().st_mtime
                data = json.loads(path.read_bytes().decode())
                int(data["port"]), str(data["host"])
            except OSError:
                continue            # vanished mid-scan: clean shutdown
            except (ValueError, KeyError, TypeError) as exc:
                kind = "corrupt"
                detail = f"unparseable member record: {exc}"
            else:
                if age > ttl_s:
                    kind = "stale"
                    detail = f"age {age:.0f}s > ttl {ttl_s:.0f}s"
            if kind is None:
                continue
            finding = DoctorFinding(
                layer="member", kind=kind, path=str(path),
                detail=detail, action="unlink")
            if repair:
                try:
                    path.unlink()
                    finding.repaired = True
                    finding.action = "unlinked"
                except OSError as exc:
                    finding.detail = str(exc)
            report.findings.append(finding)
        for path in sorted(root.glob("*.tmp")):
            try:
                if now - path.stat().st_mtime < tmp_age_s:
                    continue        # possibly a live in-flight publish
            except OSError:
                continue
            finding = DoctorFinding(
                layer="member", kind="tmp-orphan", path=str(path),
                detail="leaked by a crashed heartbeat", action="unlink")
            if repair:
                try:
                    path.unlink()
                    finding.repaired = True
                    finding.action = "unlinked"
                except OSError as exc:
                    finding.detail = str(exc)
            report.findings.append(finding)
    report.scanned["member"] = scanned


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def diagnose(repair: bool = False,
             lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
             tmp_age_s: float = disk_cache.TMP_ORPHAN_AGE_S
             ) -> DoctorReport:
    """Scan (and with ``repair=True`` heal) the whole durable state.

    Covers the run cache, the snapshot store, the campaign sqlite store
    (integrity + divergence from the cache), claim leases, and cluster
    membership records.  The IO fault shim is disarmed for the duration
    so an armed ``REPRO_IO_FAULTS`` plan cannot sabotage its own
    cleanup; the previous arming (including lazy re-arming from the
    environment) is restored afterwards.
    """
    begin = time.perf_counter()
    report = DoctorReport(cache_dir=str(disk_cache.cache_dir()),
                          repair=repair)
    saved_plan = iofaults._PLAN
    iofaults._PLAN = None
    try:
        _scan_cache(report, repair, tmp_age_s)
        _scan_snapshots(report, repair, tmp_age_s)
        _scan_store(report, repair)
        _scan_leases(report, repair, lease_ttl_s)
        _scan_members(report, repair, tmp_age_s)
    finally:
        iofaults._PLAN = saved_plan
    report.quarantine["cache"] = disk_cache.count_quarantine(
        disk_cache.quarantine_dir())
    report.quarantine["snapshot"] = disk_cache.count_quarantine(
        snapshot_store.quarantine_dir())
    report.elapsed_s = time.perf_counter() - begin
    return report
