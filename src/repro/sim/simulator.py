"""Single-core simulation driver.

``simulate_workload`` is the repo's main entry point: it assembles the
allocator, hierarchy, prefetch module, optional L1D prefetcher and core for
one (workload, configuration) pair, runs the trace with a warmup prefix,
and returns a ``RunMetrics`` snapshot.

The paper's methodology (Section V) uses half the trace for warmup and
half for measurement; ``warmup_fraction=0.5`` reproduces that split.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

from repro.core.factory import make_l2_module
from repro.cpu.core import Core
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetch.ipcp import IPCP
from repro.sim import faults
from repro.sim.config import DuelingConfig, SystemConfig, accesses_for_scale
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.workloads.suites import WorkloadSpec, catalog
from repro.workloads.trace import Trace

L1D_PREFETCHERS = ("none", "ipcp", "ipcp++")


def allocator_seed(trace_name: str) -> int:
    """Stable per-trace allocator seed.

    Must not depend on ``hash()``: PYTHONHASHSEED salting would make the
    physical layout differ between worker processes, sessions, and
    machines, breaking parallel/serial equivalence and the disk cache.

    Uses the full 32-bit crc32 value: truncating to 16 bits made distinct
    trace names collide onto identical physical layouts.
    """
    return zlib.crc32(trace_name.encode()) & 0xFFFFFFFF


def build_hierarchy(trace: Trace, config: SystemConfig, prefetcher: str,
                    variant: str, l1d: str = "none",
                    oracle_page_size: bool = False,
                    table_scale: float = 1.0,
                    dueling: Optional[DuelingConfig] = None,
                    core_id: int = 0,
                    gb_fraction: float = 0.0,
                    llc_prefetcher: str = "none",
                    llc_variant: str = "psa",
                    shared_llc=None, shared_dram=None):
    """Construct (hierarchy, module) for one run. Exposed for tests."""
    from repro.vm.allocator import PhysicalMemoryAllocator

    if l1d not in L1D_PREFETCHERS:
        raise ValueError(f"l1d must be one of {L1D_PREFETCHERS}, got {l1d!r}")
    allocator = PhysicalMemoryAllocator(
        thp_fraction=trace.thp_fraction, seed=allocator_seed(trace.name),
        core_id=core_id, gb_fraction=gb_fraction)
    module = make_l2_module(prefetcher, variant, config,
                            table_scale=table_scale, dueling=dueling)
    llc_module = None
    if llc_prefetcher != "none":
        llc_module = make_l2_module(llc_prefetcher, llc_variant, config,
                                    table_scale=table_scale)
    hierarchy = MemoryHierarchy(
        config, allocator, l2_module=module, llc_module=llc_module,
        oracle_page_size=oracle_page_size,
        shared_llc=shared_llc, shared_dram=shared_dram)
    if l1d != "none":
        hierarchy.l1d_prefetcher = IPCP(
            cross_page=(l1d == "ipcp++"),
            may_cross=hierarchy.translator.is_tlb_resident)
    return hierarchy, module


def simulate_trace(trace: Trace, config: Optional[SystemConfig] = None,
                   prefetcher: str = "spp", variant: str = "psa",
                   l1d: str = "none", oracle_page_size: bool = False,
                   warmup_fraction: float = 0.5,
                   table_scale: float = 1.0,
                   gb_fraction: float = 0.0,
                   dueling: Optional[DuelingConfig] = None,
                   oracle: bool = False,
                   snapshot_key: Optional[tuple] = None) -> RunMetrics:
    """Simulate one prepared trace and return its metrics.

    With ``oracle=True`` a differential reference model shadows the run
    (see ``repro.verify.oracle``): every functional decision is replayed
    by a naive model and diffed.  The resulting ``VerifyReport`` is
    attached as ``metrics.oracle_report``; a divergence raises
    ``OracleDivergence``.

    ``snapshot_key`` (the run's cache fingerprint) enables crash-consistent
    checkpointing when ``REPRO_SNAPSHOT_EVERY`` is set: the run stores its
    full state every N accesses, resumes from the latest valid snapshot
    when one exists, and discards it on successful completion.  The oracle
    shadows functional decisions incrementally and cannot be rebuilt
    mid-trace, so snapshotting is disabled under ``oracle=True``.
    """
    from repro.sim import snapshot as snapshot_store

    config = config if config is not None else SystemConfig()
    hierarchy, module = build_hierarchy(
        trace, config, prefetcher, variant, l1d=l1d,
        oracle_page_size=oracle_page_size, table_scale=table_scale,
        dueling=dueling, gb_fraction=gb_fraction)
    observer = None
    if oracle:
        from repro.verify.oracle import OracleDivergence, attach_oracle
        observer = attach_oracle(hierarchy)
    core = Core(hierarchy, config.rob_entries, config.fetch_width)
    warmup = int(len(trace.records) * warmup_fraction)

    snapshotting = (snapshot_key is not None and not oracle
                    and snapshot_store.snapshot_enabled())
    start_index = 0
    if snapshotting:
        resumed = snapshot_store.load(snapshot_key)
        if resumed is not None:
            access_index, state = resumed
            try:
                core.load_state_dict(state["core"])
                hierarchy.load_state_dict(state["hierarchy"])
                start_index = access_index + 1
            except (KeyError, ValueError, TypeError, IndexError,
                    AttributeError):
                # A snapshot from an incompatible configuration slipped
                # past the header checks: rebuild fresh and start over.
                snapshot_store._quarantine(
                    snapshot_store.snapshot_path(snapshot_key))
                hierarchy, module = build_hierarchy(
                    trace, config, prefetcher, variant, l1d=l1d,
                    oracle_page_size=oracle_page_size,
                    table_scale=table_scale, dueling=dueling,
                    gb_fraction=gb_fraction)
                core = Core(hierarchy, config.rob_entries,
                            config.fetch_width)
                start_index = 0

    on_record = None
    every = 0
    kill_armed = faults.kill_armed()
    if snapshotting or kill_armed:
        every = snapshot_store.snapshot_every() if snapshotting else 0

        def on_record(index: int) -> None:
            # Store *before* the kill hook so a mid-run death leaves the
            # latest interval boundary on disk; the (index + 1) phase is
            # anchored to the trace, not the attempt, so resumed runs
            # snapshot at the same access indices as uninterrupted ones.
            if every and (index + 1) % every == 0:
                snapshot_store.store(snapshot_key, index,
                                     {"core": core.state_dict(),
                                      "hierarchy": hierarchy.state_dict()})
            if kill_armed:
                faults.access_checkpoint(index)

    # ``every`` doubles as the kernel's consistency barrier: snapshots
    # fire only at these indices, so the vectorized kernel may batch
    # state between them and flush exactly at each barrier.
    result = core.run(trace, warmup_records=warmup,
                      start_index=start_index, on_record=on_record,
                      barrier_every=every)
    metrics = collect_metrics(trace.name, prefetcher, variant, hierarchy,
                              result, module)
    if snapshotting:
        snapshot_store.discard(snapshot_key)
    if observer is not None:
        report = observer.finish()
        metrics.oracle_report = report
        if not report.ok:
            raise OracleDivergence(report)
    return metrics


def simulate_workload(workload: Union[str, WorkloadSpec],
                      config: Optional[SystemConfig] = None,
                      prefetcher: str = "spp", variant: str = "psa",
                      l1d: str = "none", oracle_page_size: bool = False,
                      n_accesses: Optional[int] = None,
                      warmup_fraction: float = 0.5,
                      table_scale: float = 1.0,
                      gb_fraction: float = 0.0,
                      dueling: Optional[DuelingConfig] = None,
                      oracle: bool = False,
                      snapshot_key: Optional[tuple] = None) -> RunMetrics:
    """Generate a catalog workload's trace and simulate it."""
    # Injected faults (REPRO_FAULTS) fire here, inside the real run
    # call stack, so the supervision layer sees realistic failures.
    faults.checkpoint("workload")
    spec = (catalog(include_non_intensive=True)[workload]
            if isinstance(workload, str) else workload)
    n = n_accesses if n_accesses is not None else accesses_for_scale()
    trace = spec.generate(n)
    return simulate_trace(
        trace, config=config, prefetcher=prefetcher, variant=variant,
        l1d=l1d, oracle_page_size=oracle_page_size,
        warmup_fraction=warmup_fraction, table_scale=table_scale,
        gb_fraction=gb_fraction, dueling=dueling, oracle=oracle,
        snapshot_key=snapshot_key)
