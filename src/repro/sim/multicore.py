"""Multi-core simulation (Figs. 14-15).

Cores run independent workloads over private L1D/L2C/TLB hierarchies that
share one LLC and one DRAM (Table I: per-core 2MB LLC slice -> the shared
LLC scales with core count; DRAM configuration is the *same* for 4- and
8-core runs, which is why the paper's 8-core gains are bandwidth-limited).

Interleaving: at each step the core with the smallest local clock executes
its next trace record, so shared-resource contention (LLC capacity, DRAM
bandwidth and row buffers) is observed in approximate global time order.

The reported figure of merit is the paper's weighted speedup: for each
workload in a mix, IPC in the mix divided by IPC running alone on the same
multi-core configuration, summed over the mix; a prefetching variant's
score is its weighted IPC normalised to the baseline variant's.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cpu.core import Core
from repro.memory.cache import Cache
from repro.memory.dram import DRAM
from repro.sim.config import SystemConfig, accesses_for_scale
from repro.sim.runner import RunRequest, parallel_map, run_batch
from repro.sim.simulator import build_hierarchy
from repro.workloads.suites import WorkloadSpec, catalog


def multicore_config(base: SystemConfig, num_cores: int) -> SystemConfig:
    """Scale the shared LLC with core count and enlarge DRAM (Table I)."""
    cfg = dataclasses.replace(base)
    cfg.llc = dataclasses.replace(
        base.llc, size_bytes=base.llc.size_bytes * num_cores,
        mshr_entries=base.llc.mshr_entries * num_cores)
    # The paper uses the *same* DRAM configuration for 4- and 8-core runs
    # (Section VI-C) — that is exactly why its 8-core gains are smaller.
    # Four channels leave a 4-core system latency-bound with headroom and
    # an 8-core system bandwidth-constrained.
    cfg.dram = dataclasses.replace(
        base.dram, size_bytes=32 << 30,
        channels=max(base.dram.channels, 4))
    return cfg


@dataclass
class MixResult:
    """Per-core IPCs of one mix run under one prefetching variant."""

    workloads: List[str]
    ipcs: List[float]

    def weighted_ipc(self, isolation_ipcs: List[float]) -> float:
        return sum(ipc / iso if iso else 0.0
                   for ipc, iso in zip(self.ipcs, isolation_ipcs))


def simulate_mix(specs: List[WorkloadSpec], config: SystemConfig,
                 prefetcher: str, variant: str,
                 n_accesses: Optional[int] = None,
                 warmup_fraction: float = 0.5) -> MixResult:
    """Run one mix: len(specs) cores sharing LLC + DRAM."""
    n = n_accesses if n_accesses is not None else accesses_for_scale()
    shared_llc = Cache(config.llc)
    shared_dram = DRAM(config.dram)
    cores: List[Core] = []
    traces = []
    for core_id, spec in enumerate(specs):
        trace = spec.generate(n)
        hierarchy, _ = build_hierarchy(
            trace, config, prefetcher, variant, core_id=core_id,
            shared_llc=shared_llc, shared_dram=shared_dram)
        cores.append(Core(hierarchy, config.rob_entries, config.fetch_width))
        traces.append(trace)
    warmup = int(n * warmup_fraction)
    # Min-heap over (core local clock, core index, next record index).
    heap: List[Tuple[float, int, int]] = [
        (0.0, idx, 0) for idx in range(len(cores))]
    heapq.heapify(heap)
    while heap:
        _, idx, record_index = heapq.heappop(heap)
        core = cores[idx]
        records = traces[idx].records
        if record_index == warmup:
            core.begin_measurement()
        core.step(records[record_index])
        record_index += 1
        if record_index < len(records):
            heapq.heappush(heap, (core.now, idx, record_index))
    results = [core.finish() for core in cores]
    return MixResult(workloads=[s.name for s in specs],
                     ipcs=[r.ipc for r in results])


def isolation_ipcs(specs: List[WorkloadSpec], config: SystemConfig,
                   prefetcher: str, variant: str,
                   n_accesses: Optional[int] = None,
                   cache: Optional[Dict] = None) -> List[float]:
    """IPC of each workload alone on the multi-core configuration.

    Runs through the batch engine, so shared baselines are deduplicated,
    parallelised and served from the persistent cache.  ``cache`` is the
    legacy per-caller memo dict; it is still honoured (and filled) for
    callers that carry one across invocations.
    """
    keys = [(spec.name, prefetcher, variant, n_accesses,
             config.llc.size_bytes, config.dram.transfer_rate_mts)
            for spec in specs]
    missing = [(key, spec) for key, spec in zip(keys, specs)
               if cache is None or key not in cache]
    if missing:
        metrics = run_batch([
            RunRequest(spec, prefetcher, variant, n_accesses=n_accesses,
                       config=config) for _, spec in missing])
        fresh = {key: m.ipc for (key, _), m in zip(missing, metrics)}
        if cache is not None:
            cache.update(fresh)
    else:
        fresh = {}
    return [cache[key] if cache is not None and key in cache
            else fresh[key] for key in keys]


def generate_mixes(num_mixes: int, num_cores: int,
                   seed: int = 7) -> List[List[WorkloadSpec]]:
    """Random workload mixes drawn from the 80-workload catalog."""
    rng = random.Random(seed)
    pool = list(catalog().values())
    return [[pool[rng.randrange(len(pool))] for _ in range(num_cores)]
            for _ in range(num_mixes)]


def mix_weighted_speedup(specs: List[WorkloadSpec], config: SystemConfig,
                         prefetcher: str, variant: str,
                         baseline_variant: str = "original",
                         n_accesses: Optional[int] = None,
                         iso_cache: Optional[Dict] = None) -> float:
    """Weighted speedup of *variant* over *baseline_variant* for one mix."""
    iso = isolation_ipcs(specs, config, prefetcher, baseline_variant,
                         n_accesses, cache=iso_cache)
    run = simulate_mix(specs, config, prefetcher, variant, n_accesses)
    base = simulate_mix(specs, config, prefetcher, baseline_variant,
                        n_accesses)
    baseline_weighted = base.weighted_ipc(iso)
    if not baseline_weighted:
        return 0.0
    return run.weighted_ipc(iso) / baseline_weighted


def _mix_task(task) -> MixResult:
    """Top-level (picklable) wrapper for one mix run on the worker pool."""
    specs, config, prefetcher, variant, n_accesses = task
    return simulate_mix(specs, config, prefetcher, variant, n_accesses)


def mix_weighted_speedups(mixes: List[List[WorkloadSpec]],
                          config: SystemConfig, prefetcher: str,
                          variants: List[str],
                          baseline_variant: str = "original",
                          n_accesses: Optional[int] = None,
                          ) -> Dict[str, List[float]]:
    """Weighted speedups of several variants across many mixes (batched).

    The Figs. 14-15 driver loop, ported onto the engine: all isolation
    runs go through ``run_batch`` in one deduplicated batch (a workload
    appearing in several mixes is simulated once, or served from the disk
    cache), and the coupled mix simulations — which cannot be split — are
    fanned out across the worker pool one mix/variant per task.
    """
    unique_specs = list({spec.name: spec
                         for mix in mixes for spec in mix}.values())
    iso_by_name = dict(zip(
        [spec.name for spec in unique_specs],
        isolation_ipcs(unique_specs, config, prefetcher, baseline_variant,
                       n_accesses)))
    all_variants = [baseline_variant] + [v for v in variants
                                         if v != baseline_variant]
    tasks = [(mix, config, prefetcher, variant, n_accesses)
             for variant in all_variants for mix in mixes]
    mix_results = parallel_map(_mix_task, tasks)
    by_variant = {
        variant: mix_results[i * len(mixes):(i + 1) * len(mixes)]
        for i, variant in enumerate(all_variants)}
    speedups: Dict[str, List[float]] = {}
    for variant in variants:
        values = []
        for base, run in zip(by_variant[baseline_variant],
                             by_variant[variant]):
            iso = [iso_by_name[name] for name in run.workloads]
            baseline_weighted = base.weighted_ipc(iso)
            values.append(run.weighted_ipc(iso) / baseline_weighted
                          if baseline_weighted else 0.0)
        speedups[variant] = values
    return speedups
