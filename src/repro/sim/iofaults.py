"""Deterministic IO fault injection for the storage layer.

``repro.sim.faults`` proves the *engine* degrades instead of dying; this
module gives the same adversarial treatment to the durable state every
layer depends on — the content-addressed run cache, the snapshot store,
the campaign sqlite store, and the worker claim leases.  It is two
things at once:

1. **The filesystem shim.**  Every write/fsync/rename/read on those
   paths goes through the hooks below (:func:`write`, :func:`fsync`,
   :func:`replace`, :func:`read_bytes`, :func:`fsync_dir`,
   :func:`check`, and the composed :func:`publish_bytes`).  When no
   fault plan is armed each hook is a single ``None`` check in front of
   the real ``os`` call — the disabled overhead is bench-asserted ≤ 2%
   (``benchmarks/bench_iofaults.py``).
2. **The fault grammar.**  ``REPRO_IO_FAULTS`` — in the style of
   ``faults.parse`` — describes which storage *operations* fail and how::

       spec    := clause (";" clause)*
       clause  := kind target? (":" key "=" value)*
       target  := "@" idx ("+" idx)*     explicit 0-based op indices
                | "~" count "/" seed     seeded sample from a window
       kind    := "enospc" | "torn" | "eio" | "fsync-lost"
                | "partial-read" | "slow"

   Examples::

       REPRO_IO_FAULTS="enospc@3:site=cache"      # 4th cache write op
       REPRO_IO_FAULTS="torn~2/7"                 # 2 seeded torn writes
       REPRO_IO_FAULTS="eio:site=store"           # every sqlite op
       REPRO_IO_FAULTS="fsync-lost@0:site=snapshot;slow:secs=0.01"

   Parameters: ``site=<prefix>`` restricts a clause to one layer or op
   (``cache``, ``cache.write``, ``snapshot``, ``store``, ``lease``,
   ...); ``secs=<float>`` is the ``slow`` stall (default 0.01);
   ``of=<int>`` is the seeded-sample window (default 16 ops per site).

**Sites** are dotted ``<layer>.<op>`` names; the op suffix decides which
kinds can fire there:

    ========== =====================================================
    op          kinds that apply
    ========== =====================================================
    write       enospc, torn, eio, slow
    fsync       fsync-lost, eio, slow
    rename      enospc, eio, slow
    dirsync     eio, slow
    read        partial-read, eio, slow
    open        enospc, eio, slow        (sqlite connect)
    commit      enospc, eio, slow        (sqlite transaction)
    ========== =====================================================

**Deterministic sequencing**: each site keeps a per-process operation
counter; clause targets index into that sequence, so a replay of the
same workload fires the same faults at the same operations.  Error
kinds raise :class:`InjectedIOError` (an ``OSError`` with a real
``errno``) so every caller's existing ``except OSError`` degradation
path is exercised; ``torn`` and ``fsync-lost`` instead *succeed* while
silently losing bytes — the published file is garbled exactly like a
torn write or a power loss after a lost fsync, and must be caught by
the reader-side validation (quarantine), never served.

The plan is armed lazily from the environment on the first hook call
(so pool workers inherit it), or explicitly via :func:`arm`/
:func:`disarm` in tests.  A malformed spec raises
:class:`IOFaultSpecError`, a :class:`ConfigurationError` — an operator
mistake, not a simulation failure.
"""

from __future__ import annotations

import errno
import os
import random
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.sim.config import ConfigurationError

ENV_VAR = "REPRO_IO_FAULTS"

KINDS = ("enospc", "torn", "eio", "fsync-lost", "partial-read", "slow")

#: Which fault kinds can fire at which op suffix (see module docstring).
_OPS_FOR_KIND = {
    "enospc": ("write", "rename", "open", "commit"),
    "torn": ("write",),
    "eio": ("write", "fsync", "rename", "dirsync", "read", "open",
            "commit"),
    "fsync-lost": ("fsync",),
    "partial-read": ("read",),
    "slow": ("write", "fsync", "rename", "dirsync", "read", "open",
             "commit"),
}

#: Default window for seeded "~count/seed" sampling (ops per site).
DEFAULT_WINDOW = 16


class IOFaultSpecError(ConfigurationError):
    """A ``REPRO_IO_FAULTS`` spec failed to parse."""


class InjectedIOError(OSError):
    """An injected storage failure (carries a real errno)."""


@dataclass(frozen=True)
class IOFaultClause:
    """One parsed spec clause: kind, site filter, and op targets."""

    kind: str
    site: str = ""                              # dotted prefix filter
    indices: Optional[Tuple[int, ...]] = None   # explicit "@" targets
    count: int = 0                              # seeded "~" sample size
    seed: int = 0
    window: int = DEFAULT_WINDOW
    secs: float = 0.01                          # slow stall duration

    def matches_site(self, site: str) -> bool:
        if not self.site:
            return True
        return site == self.site or site.startswith(self.site + ".")

    def fires(self, site: str, index: int) -> bool:
        """Does this clause fire for op *index* of *site*?"""
        if site.rsplit(".", 1)[-1] not in _OPS_FOR_KIND[self.kind]:
            return False
        if not self.matches_site(site):
            return False
        if self.indices is not None:
            return index in self.indices
        if self.count:
            if index >= self.window:
                return False
            # Seed mixed with the site so two sites fail at different
            # offsets, deterministically across processes and replays.
            rng = random.Random(self.seed ^ zlib.crc32(site.encode()))
            return index in rng.sample(range(self.window),
                                       min(self.count, self.window))
        return True                              # bare kind: every op


def _parse_clause(clause: str) -> IOFaultClause:
    head, *raw_params = clause.split(":")
    params: Dict[str, object] = {}
    for item in raw_params:
        key, sep, value = item.partition("=")
        if not sep or not value:
            raise IOFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: malformed parameter "
                f"{item!r}")
        try:
            if key == "site":
                params["site"] = value
            elif key == "secs":
                params["secs"] = float(value)
            elif key == "of":
                params["window"] = int(value)
                if params["window"] <= 0:
                    raise IOFaultSpecError(
                        f"{ENV_VAR} clause {clause!r}: of= must be > 0")
            else:
                raise IOFaultSpecError(
                    f"{ENV_VAR} clause {clause!r}: unknown parameter "
                    f"{key!r} (expected site=, secs= or of=)")
        except ValueError:
            raise IOFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: bad value for "
                f"{key!r}: {value!r}") from None

    explicit = "@" in head
    seeded = "~" in head
    if explicit and seeded:
        raise IOFaultSpecError(
            f"{ENV_VAR} clause {clause!r}: use @idx or ~count/seed, "
            f"not both")
    if explicit:
        kind, _, target = head.partition("@")
        try:
            indices = tuple(int(part) for part in target.split("+"))
        except ValueError:
            raise IOFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: bad op index in "
                f"{target!r}") from None
        if any(i < 0 for i in indices):
            raise IOFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: negative op index")
        params["indices"] = indices
    elif seeded:
        kind, _, target = head.partition("~")
        count_str, sep, seed_str = target.partition("/")
        if not sep or not count_str or not seed_str:
            raise IOFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: seeded target must be "
                f"count/seed")
        try:
            params["count"], params["seed"] = int(count_str), int(seed_str)
        except ValueError:
            raise IOFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: bad count/seed "
                f"{target!r}") from None
        if params["count"] < 0:
            raise IOFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: negative count")
    else:
        kind = head
    if kind not in KINDS:
        raise IOFaultSpecError(
            f"{ENV_VAR} clause {clause!r}: unknown kind {kind!r} "
            f"(expected one of {', '.join(KINDS)})")
    return IOFaultClause(kind=kind, **params)


def parse(spec: str) -> List[IOFaultClause]:
    """Parse a fault spec string (raises :class:`IOFaultSpecError`)."""
    clauses = []
    for part in spec.split(";"):
        part = part.strip()
        if part:
            clauses.append(_parse_clause(part))
    return clauses


def plan_from_env() -> Optional[List[IOFaultClause]]:
    """The clauses armed via ``REPRO_IO_FAULTS``, or None when unset."""
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return parse(spec)


# ----------------------------------------------------------------------
# Arming
# ----------------------------------------------------------------------

_UNINITIALIZED = object()

#: The armed plan: _UNINITIALIZED until the first hook call (then read
#: once from the environment), None when disabled, else clause list.
_PLAN = _UNINITIALIZED

#: Per-site operation counters (deterministic sequencing).
_COUNTERS: Dict[str, int] = {}


def arm(spec: str) -> List[IOFaultClause]:
    """Arm a fault plan for this process (tests; resets sequencing)."""
    global _PLAN
    _PLAN = parse(spec)
    _COUNTERS.clear()
    return _PLAN


def disarm() -> None:
    """Disable injection and forget the cached environment read."""
    global _PLAN
    _PLAN = _UNINITIALIZED
    _COUNTERS.clear()


def reset_counters() -> None:
    """Zero the per-site op counters (test isolation helper)."""
    _COUNTERS.clear()


def _plan() -> Optional[List[IOFaultClause]]:
    global _PLAN
    if _PLAN is _UNINITIALIZED:
        _PLAN = plan_from_env()
        _COUNTERS.clear()
    return _PLAN


def _actions(site: str) -> List[IOFaultClause]:
    """Advance *site*'s op counter; return the clauses firing on it."""
    plan = _plan()
    if plan is None:
        return ()
    index = _COUNTERS.get(site, 0)
    _COUNTERS[site] = index + 1
    return [clause for clause in plan if clause.fires(site, index)]


def _raise_for(site: str, fired: List[IOFaultClause]) -> None:
    """Apply error/slow kinds; torn/fsync-lost are handled by callers."""
    for clause in fired:
        if clause.kind == "slow":
            time.sleep(clause.secs)
        elif clause.kind == "enospc":
            raise InjectedIOError(
                errno.ENOSPC, f"injected ENOSPC at {site}")
        elif clause.kind == "eio":
            raise InjectedIOError(errno.EIO, f"injected EIO at {site}")


# ----------------------------------------------------------------------
# The filesystem shim
# ----------------------------------------------------------------------

def check(site: str) -> None:
    """Generic fault point for ops with no data payload (open/commit)."""
    if _PLAN is None:
        return
    _raise_for(site, _actions(site))


def write(site: str, handle, data: bytes) -> None:
    """``handle.write(data)`` with enospc/eio/torn/slow injection.

    ``torn`` writes only the first half and then *succeeds* — the
    publish that follows exposes a torn file, exactly like a crashed
    writer on a non-atomic filesystem.
    """
    if _PLAN is None:
        handle.write(data)
        return
    fired = _actions(site)
    _raise_for(site, fired)
    if any(clause.kind == "torn" for clause in fired):
        handle.write(data[:len(data) // 2])
        return
    handle.write(data)


def fsync(site: str, handle) -> None:
    """``flush + os.fsync`` with fsync-lost/eio/slow injection.

    ``fsync-lost`` models a power loss after a silently-failed fsync:
    the call reports success but the tail of the file never reached the
    platter — implemented by truncating the still-unpublished temp file
    to half, so the subsequent rename publishes a torn entry.
    """
    if _PLAN is None:
        handle.flush()
        os.fsync(handle.fileno())
        return
    fired = _actions(site)
    _raise_for(site, fired)
    handle.flush()
    if any(clause.kind == "fsync-lost" for clause in fired):
        size = os.fstat(handle.fileno()).st_size
        os.ftruncate(handle.fileno(), size // 2)
        return
    os.fsync(handle.fileno())


def replace(site: str, src, dst) -> None:
    """``os.replace`` with enospc/eio/slow injection."""
    if _PLAN is None:
        os.replace(src, dst)
        return
    _raise_for(site, _actions(site))
    os.replace(src, dst)


def read_bytes(site: str, path, limit: Optional[int] = None) -> bytes:
    """``Path.read_bytes`` with partial-read/eio/slow injection.

    ``partial-read`` returns only the first half of the bytes — the
    caller's validation must treat it exactly like a torn entry.  With
    *limit*, at most that many leading bytes are read (header-only
    probes stay header-sized even through the shim).
    """
    if not isinstance(path, Path):
        path = Path(path)
    if _PLAN is None:
        return _read_limited(path, limit)
    fired = _actions(site)
    _raise_for(site, fired)
    data = _read_limited(path, limit)
    if any(clause.kind == "partial-read" for clause in fired):
        return data[:len(data) // 2]
    return data


def _read_limited(path: Path, limit: Optional[int]) -> bytes:
    if limit is None:
        return path.read_bytes()
    with path.open("rb") as handle:
        return handle.read(limit)


def fsync_dir(site: str, path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Failures of the *real* dir fsync are swallowed (some filesystems
    refuse O_RDONLY dir fsync); injected eio is raised like any other.
    """
    if _PLAN is not None:
        _raise_for(site, _actions(site))
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def publish_bytes(layer: str, path: Path, data: bytes,
                  tmp: str) -> None:
    """The shared temp-fsync-rename-dirsync publish sequence.

    Writes *data* to the already-created temp file *tmp*, fsyncs it,
    atomically renames it over *path*, and fsyncs the parent directory
    — the crash-consistent pattern every durable writer uses, with a
    fault point at each step (``<layer>.write``, ``<layer>.fsync``,
    ``<layer>.rename``, ``<layer>.dirsync``).  Raises ``OSError`` on
    (injected or real) failure; the temp file is the caller's to clean.
    """
    with open(tmp, "wb") as handle:
        write(f"{layer}.write", handle, data)
        fsync(f"{layer}.fsync", handle)
    replace(f"{layer}.rename", tmp, path)
    fsync_dir(f"{layer}.dirsync", path.parent)
