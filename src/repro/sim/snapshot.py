"""Crash-consistent mid-run snapshots for individual simulations.

A long simulation that dies (crash, SIGKILL, timeout) loses all progress;
the supervisor restarts it from access zero.  This module lets a run
checkpoint its *complete* simulation state — caches with replacement and
MSHR state, prefetcher tables, PPM/set-dueling counters, TLBs, page table,
allocator, and the core's pipeline state — every ``REPRO_SNAPSHOT_EVERY``
accesses, so a retried attempt resumes mid-trace and finishes **bitwise
identical** to an uninterrupted run.

Layout (under ``REPRO_SNAPSHOT_DIR`` or ``<cache dir>/snapshots``)::

    objects/<2-hex fan-out>/<sha256 of salted run key>.snap

One file per run key, overwritten in place as the run advances.  The file
is a one-line JSON header (version, code-version salt, run key repr, the
access index the snapshot was taken after, body length and sha256) followed
by a pickled state payload.  Guarantees, mirroring ``repro.sim.cache``:

- **Atomic writes**: temp file in the same directory, flushed and fsynced,
  then ``os.replace``d — a crash mid-store can never expose a torn
  snapshot, only the previous intact one.
- **Corruption tolerance**: a snapshot failing any header, length or
  checksum validation is quarantined to ``<snapshot dir>/quarantine/``
  (never an exception, never a silent delete) and treated as absent — the
  run restarts from scratch.
- **Versioned invalidation**: the key digest and header are salted with
  ``CACHE_VERSION``/``CODE_VERSION``; snapshots from older code are never
  resumed.

Snapshots are *transient*: ``discard`` removes a run's snapshot once it
completes, and ``prune`` (``repro snapshot prune``) sweeps leftovers from
runs that never finished.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.sim import iofaults
from repro.sim.cache import CACHE_VERSION, CODE_VERSION, cache_dir
from repro.sim.config import env_int

MAGIC = b"repro-snapshot\n"

#: Snapshot format version: bump when the header or payload shape changes.
SNAPSHOT_VERSION = 1

#: Module-level counters, for tests and diagnostics (per process).
COUNTERS = {"stores": 0, "loads": 0, "misses": 0, "quarantined": 0,
            "discards": 0}


def snapshot_every() -> int:
    """Checkpoint interval in accesses; 0 (the default) disables."""
    return env_int("REPRO_SNAPSHOT_EVERY", 0, minimum=0)


def snapshot_enabled() -> bool:
    return snapshot_every() > 0


def snapshot_dir() -> Path:
    """Snapshot root: ``REPRO_SNAPSHOT_DIR`` or ``<cache dir>/snapshots``."""
    override = os.environ.get("REPRO_SNAPSHOT_DIR")
    if override:
        return Path(override)
    return cache_dir() / "snapshots"


def _salt() -> str:
    return f"{CACHE_VERSION}:{CODE_VERSION}:{SNAPSHOT_VERSION}"


def key_digest(key: tuple) -> str:
    """Content address of one run key, salted by the code version."""
    return hashlib.sha256(repr((_salt(), key)).encode()).hexdigest()


def snapshot_path(key: tuple) -> Path:
    digest = key_digest(key)
    return snapshot_dir() / "objects" / digest[:2] / f"{digest[2:]}.snap"


def quarantine_dir() -> Path:
    return snapshot_dir() / "quarantine"


def _quarantine(path: Path) -> Optional[Path]:
    """Move a bad snapshot aside (pid/serial-probed name, never overwrite);
    fall back to unlinking so bad bytes can never poison later resumes."""
    try:
        quarantine_dir().mkdir(parents=True, exist_ok=True)
        dest = quarantine_dir() / path.name
        serial = 0
        while dest.exists():
            serial += 1
            dest = (quarantine_dir()
                    / f"{path.stem}.{os.getpid()}.{serial}{path.suffix}")
        os.replace(path, dest)
        COUNTERS["quarantined"] += 1
        return dest
    except OSError:
        try:
            path.unlink()
            COUNTERS["quarantined"] += 1
        except OSError:
            pass
        return None


# ----------------------------------------------------------------------
# Store / load / discard
# ----------------------------------------------------------------------

def store(key: tuple, access_index: int, state: dict) -> bool:
    """Atomically persist the state reached *after* ``access_index``.

    The body is flushed and fsynced before the rename: a crash at any
    instant leaves either the previous snapshot or this one, never a mix.
    Returns False when the snapshot directory is unwritable (the run
    simply continues unprotected).
    """
    path = snapshot_path(key)
    body = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "version": SNAPSHOT_VERSION,
        "salt": _salt(),
        "key": repr(key),
        "access_index": access_index,
        "length": len(body),
        "sha256": hashlib.sha256(body).hexdigest(),
    }
    data = MAGIC + json.dumps(header).encode() + b"\n" + body
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            iofaults.publish_bytes("snapshot", path, data, tmp)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False
    COUNTERS["stores"] += 1
    return True


#: Upper bound on a snapshot header line (magic + JSON + newline);
#: keeps header probes one small read even through the fault shim.
_HEADER_READ_LIMIT = 1 << 16


def read_header(path: Path) -> Optional[dict]:
    """Parse and sanity-check a snapshot's header line (not the body).

    Goes through ``iofaults.read_bytes`` (site ``snapshot.read``) so a
    torn or partially-read header under ``REPRO_IO_FAULTS`` degrades to
    ``None`` — the progress path reports "no progress yet" instead of
    crashing or trusting doubtful bytes.
    """
    try:
        raw = iofaults.read_bytes("snapshot.read", path,
                                  limit=_HEADER_READ_LIMIT)
    except OSError:
        return None
    if not raw.startswith(MAGIC):
        return None
    newline = raw.find(b"\n", len(MAGIC))
    if newline < 0:
        return None
    try:
        header = json.loads(raw[len(MAGIC):newline].decode())
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(header, dict):
        return None
    return header


def peek(key: tuple) -> Optional[dict]:
    """Header-only progress probe for one run key (no body unpickle).

    Returns the snapshot's header dict (``access_index``, ``length``,
    ...) when a current-version snapshot exists, else ``None``.  This is
    the serving layer's progress path: it costs one small read, never
    deserializes simulator state, and never quarantines — a torn file
    simply reads as "no progress yet".
    """
    path = snapshot_path(key)
    header = read_header(path)
    if (header is None
            or header.get("version") != SNAPSHOT_VERSION
            or header.get("salt") != _salt()
            or not isinstance(header.get("access_index"), int)):
        return None
    return header


def load(key: tuple) -> Optional[Tuple[int, dict]]:
    """Fetch the latest valid snapshot; return (access_index, state).

    Any failure — missing magic, wrong version/salt, short body, checksum
    mismatch, unpicklable payload — quarantines the file and reports a
    miss, so a resume can never start from doubtful state.
    """
    path = snapshot_path(key)
    if not path.exists():
        COUNTERS["misses"] += 1
        return None
    header = read_header(path)
    if (header is None
            or header.get("version") != SNAPSHOT_VERSION
            or header.get("salt") != _salt()
            or not isinstance(header.get("access_index"), int)
            or not isinstance(header.get("length"), int)):
        _quarantine(path)
        COUNTERS["misses"] += 1
        return None
    try:
        raw = iofaults.read_bytes("snapshot.read", path)
        newline = raw.index(b"\n", len(MAGIC))
        body = raw[newline + 1:]
        if (len(body) != header["length"]
                or hashlib.sha256(body).hexdigest() != header.get("sha256")):
            raise ValueError("snapshot body failed validation")
        state = pickle.loads(body)
        if not isinstance(state, dict):
            raise ValueError("snapshot payload is not a state dict")
    except (OSError, ValueError, TypeError, KeyError, EOFError,
            pickle.UnpicklingError, AttributeError, ImportError,
            IndexError, MemoryError):
        _quarantine(path)
        COUNTERS["misses"] += 1
        return None
    COUNTERS["loads"] += 1
    return header["access_index"], state


def discard(key: tuple) -> bool:
    """Remove a run's snapshot (called when the run completes)."""
    try:
        snapshot_path(key).unlink()
    except OSError:
        return False
    COUNTERS["discards"] += 1
    return True


# ----------------------------------------------------------------------
# Maintenance (powers the `repro snapshot` CLI subcommand)
# ----------------------------------------------------------------------

@dataclass
class SnapshotEntry:
    """Metadata of one on-disk snapshot (for ``repro snapshot list``)."""

    path: Path
    size_bytes: int = 0
    access_index: int = -1
    key: str = "?"
    current: bool = False   # snapshot salt matches the running code version


@dataclass
class SnapshotStats:
    """Summary of the snapshot directory state."""

    directory: Path
    entries: int = 0
    total_bytes: int = 0

    def describe(self) -> str:
        size_kb = self.total_bytes / 1024
        every = snapshot_every()
        state = (f"enabled (every {every} accesses)" if every
                 else "disabled (REPRO_SNAPSHOT_EVERY unset)")
        return (f"snapshot dir : {self.directory}\n"
                f"state        : {state}\n"
                f"snapshots    : {self.entries}\n"
                f"size         : {size_kb:.1f} KiB\n"
                f"version      : {_salt()}")


def list_entries() -> "list[SnapshotEntry]":
    """Enumerate every snapshot, newest first; unreadable ones skipped."""
    objects = snapshot_dir() / "objects"
    entries: "list[SnapshotEntry]" = []
    if not objects.is_dir():
        return entries
    stamped = []
    for path in objects.glob("*/*.snap"):
        try:
            stat_result = path.stat()
        except OSError:
            continue
        header = read_header(path)
        if header is None:
            header = {}
        entry = SnapshotEntry(
            path=path, size_bytes=stat_result.st_size,
            access_index=header.get("access_index", -1),
            key=str(header.get("key", "?")),
            current=header.get("salt") == _salt())
        stamped.append((stat_result.st_mtime, entry))
    stamped.sort(key=lambda pair: pair[0], reverse=True)
    return [entry for _, entry in stamped]


def stats() -> SnapshotStats:
    result = SnapshotStats(directory=snapshot_dir())
    objects = snapshot_dir() / "objects"
    if not objects.is_dir():
        return result
    for path in objects.glob("*/*.snap"):
        try:
            result.total_bytes += path.stat().st_size
            result.entries += 1
        except OSError:
            continue
    return result


def prune(all_entries: bool = False) -> int:
    """Remove leftover snapshots; returns the number removed.

    By default only snapshots whose salt no longer matches the running
    code (unresumable) are removed; ``all_entries=True`` sweeps everything
    — safe because snapshots only ever save re-computable work.
    """
    objects = snapshot_dir() / "objects"
    removed = 0
    if not objects.is_dir():
        return removed
    for path in objects.glob("*/*.snap"):
        header = read_header(path)
        stale = header is None or header.get("salt") != _salt()
        if not (all_entries or stale):
            continue
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    for sub in objects.glob("*"):
        try:
            sub.rmdir()
        except OSError:
            continue
    return removed


def reset_counters() -> None:
    """Zero the per-process counters (test isolation helper)."""
    for name in COUNTERS:
        COUNTERS[name] = 0
