"""System configuration (Table I of the paper) and scaling knobs.

Every structural parameter the evaluation sweeps (L2C MSHR entries, LLC
size, DRAM transfer rate, core count) lives here so that the constrained
evaluation of Fig. 12 is a pure configuration sweep.
"""

from __future__ import annotations

import dataclasses
import os
import re
from dataclasses import dataclass, field


@dataclass
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int          # access latency in cycles
    mshr_entries: int
    block_bytes: int = 64

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_bytes)

    def validate(self) -> None:
        if self.size_bytes % (self.ways * self.block_bytes):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*block ({self.ways}*{self.block_bytes})"
            )
        if self.sets & (self.sets - 1):
            raise ValueError(f"{self.name}: set count {self.sets} not a power of two")


@dataclass
class TLBConfig:
    """Geometry and timing of one TLB level."""

    name: str
    entries: int
    ways: int
    latency: int
    mshr_entries: int

    @property
    def sets(self) -> int:
        return self.entries // self.ways


@dataclass
class DRAMConfig:
    """DRAM timing/bandwidth model parameters.

    ``transfer_rate_mts`` sets the per-channel bandwidth; at 4GHz core clock
    one 64B line occupies the channel for ``64 / (rate * 8 / 4000)`` cycles.
    Row-buffer hits skip the precharge+activate latency.
    """

    size_bytes: int = 8 << 30
    transfer_rate_mts: int = 3200
    channels: int = 1
    banks_per_channel: int = 8
    row_bytes: int = 8192
    row_hit_latency: int = 110     # cycles: queue + CAS + transfer start
    row_miss_latency: int = 165    # cycles: + precharge + activate
    core_clock_mhz: int = 4000

    @property
    def cycles_per_transfer(self) -> float:
        """Core cycles one 64B line occupies a channel's data bus."""
        bytes_per_usec = self.transfer_rate_mts * 8  # MT/s * 8B per transfer
        cycles_per_usec = self.core_clock_mhz
        return 64.0 * cycles_per_usec / bytes_per_usec


@dataclass
class DuelingConfig:
    """Set-Dueling selector parameters (Section IV-B of the paper)."""

    leader_sets: int = 32          # per competing prefetcher
    csel_bits: int = 3
    #: 'proposed' trains both prefetchers on all accesses (paper default);
    #: 'standard' trains only the selected one (Fig. 11 SD-Standard);
    #: 'page-size' statically selects by the access's page-size bit.
    policy: str = "proposed"


@dataclass
class SystemConfig:
    """Full single-core system configuration (Table I defaults)."""

    # Core
    rob_entries: int = 352
    fetch_width: int = 4
    # TLBs
    dtlb: TLBConfig = field(default_factory=lambda: TLBConfig("DTLB", 64, 4, 1, 8))
    itlb: TLBConfig = field(default_factory=lambda: TLBConfig("ITLB", 64, 4, 1, 8))
    stlb: TLBConfig = field(default_factory=lambda: TLBConfig("STLB", 1536, 12, 8, 16))
    # Caches
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1I", 32 << 10, 8, 4, 8))
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 48 << 10, 12, 5, 16))
    l2c: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2C", 512 << 10, 8, 10, 32))
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 2 << 20, 16, 20, 64))
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    dueling: DuelingConfig = field(default_factory=DuelingConfig)
    # Page walk
    pwc_entries: int = 32          # MMU (page-structure) cache entries
    page_walk_levels_4k: int = 4
    page_walk_levels_2m: int = 3
    page_walk_levels_1g: int = 2
    # PPM
    ppm_enabled: bool = True       # page-size bit present in L1D MSHR
    ppm_to_llc: bool = False       # also propagate via L2C MSHR to LLC pref.
    #: Concurrently supported page sizes (2 = 4KB+2MB; 3 adds 1GB and
    #: widens PPM to ceil(log2 3) = 2 bits per L1D MSHR entry).
    num_page_sizes: int = 2
    #: Synergistic next-page TLB prefetching (the paper's footnote 3):
    #: on an STLB miss, the translation of the next virtual page is walked
    #: in the background and installed, so L1D page-crossing prefetchers
    #: (IPCP++) find translations resident more often.
    tlb_prefetch: bool = False

    def validate(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2c, self.llc):
            cache.validate()
        if self.dueling.leader_sets * 2 > self.l2c.sets:
            raise ValueError("leader sets exceed L2C set count")

    def scaled_llc(self, size_bytes: int) -> "SystemConfig":
        """Return a copy with a different LLC capacity (Fig. 12B sweep)."""
        cfg = dataclasses.replace(self)
        cfg.llc = dataclasses.replace(self.llc, size_bytes=size_bytes)
        return cfg

    def scaled_l2c_mshr(self, entries: int) -> "SystemConfig":
        """Return a copy with a different L2C MSHR size (Fig. 12A sweep)."""
        cfg = dataclasses.replace(self)
        cfg.l2c = dataclasses.replace(self.l2c, mshr_entries=entries)
        return cfg

    def scaled_dram(self, transfer_rate_mts: int) -> "SystemConfig":
        """Return a copy with a different DRAM rate (Fig. 12C sweep)."""
        cfg = dataclasses.replace(self)
        cfg.dram = dataclasses.replace(self.dram, transfer_rate_mts=transfer_rate_mts)
        return cfg

    def describe(self) -> str:
        """Render the configuration as a Table-I style text block."""
        rows = [
            ("CPU Core", f"{self.fetch_width}-wide, {self.rob_entries}-entry ROB"),
            ("L1 ITLB/DTLB", f"{self.dtlb.entries}-entry, {self.dtlb.ways}-way, "
             f"{self.dtlb.latency}-cycle, {self.dtlb.mshr_entries}-entry MSHR"),
            ("L2 TLB", f"{self.stlb.entries}-entry, {self.stlb.ways}-way, "
             f"{self.stlb.latency}-cycle, {self.stlb.mshr_entries}-entry MSHR"),
        ]
        for cache in (self.l1i, self.l1d, self.l2c, self.llc):
            rows.append((cache.name, f"{cache.size_bytes >> 10}KB, {cache.ways}-way, "
                         f"{cache.latency}-cycle, {cache.mshr_entries}-entry MSHR"))
        rows.append(("Set Dueling", f"{self.dueling.leader_sets} leader sets each, "
                     f"{self.dueling.csel_bits}-bit Csel"))
        rows.append(("DRAM", f"{self.dram.size_bytes >> 30}GB, "
                     f"{self.dram.transfer_rate_mts}MT/s, "
                     f"{self.dram.channels} channel(s)"))
        width = max(len(r[0]) for r in rows)
        return "\n".join(f"{name:<{width}}  {desc}" for name, desc in rows)


class ConfigurationError(RuntimeError):
    """A REPRO_* environment knob holds an unusable value.

    Deliberately *not* a ``ValueError``: the supervisor treats
    ``ValueError`` raised inside a worker as a permanent simulation
    failure, whereas a bad knob is an operator mistake that must abort
    loudly in the parent process with a message naming the variable.
    """


def env_int(name: str, default: int, minimum: int | None = None) -> int:
    """Parse an integer environment knob, or raise ConfigurationError."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ConfigurationError(
            f"{name} must be >= {minimum}, got {value}")
    return value


def env_float(name: str, default: float,
              minimum: float | None = None) -> float:
    """Parse a float environment knob, or raise ConfigurationError."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name} must be a number, got {raw!r}") from None
    if minimum is not None and value < minimum:
        raise ConfigurationError(
            f"{name} must be >= {minimum}, got {value}")
    return value


def env_str(name: str, default: str,
            pattern: str | None = None) -> str:
    """Parse a string environment knob, or raise ConfigurationError.

    ``pattern`` (a regex, fullmatch) constrains values that end up in
    filenames or identifiers — a knob that fails it aborts loudly in
    the parent process instead of producing unreadable paths deep in a
    worker.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip()
    if pattern is not None and not re.fullmatch(pattern, value):
        raise ConfigurationError(
            f"{name} must match {pattern!r}, got {value!r}")
    return value


#: Per-workload memory-access budget for each REPRO_SCALE setting.
SCALE_ACCESSES = {"tiny": 8_000, "small": 40_000, "medium": 200_000, "large": 1_000_000}
#: Multi-core mix count for each REPRO_SCALE setting.
SCALE_MIXES = {"tiny": 4, "small": 12, "medium": 40, "large": 100}


def current_scale() -> str:
    """Read the REPRO_SCALE env knob (default 'small')."""
    scale = os.environ.get("REPRO_SCALE", "small")
    if scale not in SCALE_ACCESSES:
        raise ValueError(f"unknown REPRO_SCALE {scale!r}; "
                         f"choose from {sorted(SCALE_ACCESSES)}")
    return scale


def accesses_for_scale(scale: str | None = None) -> int:
    """Memory accesses to simulate per workload at the given scale."""
    return SCALE_ACCESSES[scale or current_scale()]


def mixes_for_scale(scale: str | None = None) -> int:
    """Multi-core mixes to evaluate at the given scale."""
    return SCALE_MIXES[scale or current_scale()]
