"""Deterministic fault injection for the batch engine.

The supervision layer (``repro.sim.supervisor``) is only trustworthy if
its failure paths are exercised; this module makes failures first-class,
reproducible inputs.  A fault *spec* — from the ``REPRO_FAULTS``
environment variable or passed programmatically — describes which runs
of a batch fail and how:

    spec    := clause (";" clause)*
    clause  := kind target (":" key "=" value)*
    target  := "@" idx ("+" idx)*          explicit 0-based run indices
             | "~" count "/" seed          seeded random sample of runs
    kind    := "crash" | "hang" | "error" | "truncate" | "corrupt" | "kill"

Examples::

    REPRO_FAULTS="crash@4;hang@9:secs=30"      # the acceptance scenario
    REPRO_FAULTS="error@0:first=1"             # fail attempt 0, then heal
    REPRO_FAULTS="crash~3/42"                  # 3 seeded-random crashes
    REPRO_FAULTS="kill@0:at=1500:first=1"      # die mid-trace once, resume

Parameters: ``secs=<float>`` (hang duration, default 30),
``first=<int>`` (fire only on the first N attempts; 0 = every attempt,
so ``first=1`` models a transient that a retry cures), and
``at=<int>`` (``kill`` only: the access index after which the run dies —
the snapshot/resume acceptance scenario).

Indices refer to positions in the batch's *scheduled* run list (after
dedupe and cache hits), which is what makes a schedule deterministic: a
rerun of a partially cached batch renumbers only the cache misses.

Kinds ``crash``/``hang``/``error``/``truncate`` fire at the
:func:`checkpoint` the simulator calls at the start of every run, inside
the real worker call stack.  ``crash`` terminates the worker process
with ``os._exit(137)`` when running in a supervised pool worker
(exercising ``BrokenProcessPool`` recovery) and raises
:class:`InjectedCrash` in-process otherwise, so serial fallback resolves
persistent crashers without killing the host.  ``corrupt`` is applied by
the parent *after* the run's cache entry is written (garbling the entry
on disk) to exercise the cache quarantine path.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.workloads.io import TraceFormatError

ENV_VAR = "REPRO_FAULTS"

KINDS = ("crash", "hang", "error", "truncate", "corrupt", "kill")


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec failed to parse."""


class InjectedError(RuntimeError):
    """Base class for injected failures (treated as transient)."""


class InjectedCrash(InjectedError):
    """An injected worker crash, raised in-process (serial execution)."""


@dataclass(frozen=True)
class FaultAction:
    """What happens when a targeted run reaches a checkpoint."""

    kind: str
    secs: float = 30.0    # hang duration
    first: int = 0        # fire only on attempts < first (0 = always)
    at: int = -1          # kill: die after access index `at` completes

    def fires(self, attempt: int) -> bool:
        return self.first == 0 or attempt < self.first


@dataclass(frozen=True)
class FaultClause:
    """One parsed spec clause: an action plus its run targets."""

    action: FaultAction
    indices: Optional[Tuple[int, ...]] = None   # explicit "@" targets
    count: int = 0                              # seeded "~" sample size
    seed: int = 0

    def resolve(self, n_runs: int) -> Tuple[int, ...]:
        """Concrete run indices for a batch of *n_runs* scheduled runs."""
        if self.indices is not None:
            return tuple(i for i in self.indices if i < n_runs)
        count = min(self.count, n_runs)
        if count <= 0:
            return ()
        return tuple(sorted(
            random.Random(self.seed).sample(range(n_runs), count)))


def _parse_params(clause: str, raw: List[str]) -> Dict[str, float]:
    params: Dict[str, float] = {}
    for item in raw:
        key, sep, value = item.partition("=")
        if not sep or not value:
            raise FaultSpecError(
                f"fault clause {clause!r}: malformed parameter {item!r}")
        if key == "secs":
            params["secs"] = float(value)
        elif key == "first":
            params["first"] = int(value)
        elif key == "at":
            params["at"] = int(value)
        else:
            raise FaultSpecError(
                f"fault clause {clause!r}: unknown parameter {key!r} "
                "(expected secs=, first= or at=)")
    return params


def _parse_clause(clause: str) -> FaultClause:
    head, *raw_params = clause.split(":")
    try:
        params = _parse_params(clause, raw_params)
    except ValueError as exc:
        if isinstance(exc, FaultSpecError):
            raise
        raise FaultSpecError(
            f"fault clause {clause!r}: bad parameter value ({exc})") from exc

    explicit = "@" in head
    seeded = "~" in head
    if explicit == seeded:
        raise FaultSpecError(
            f"fault clause {clause!r}: expected kind@idx[+idx...] or "
            "kind~count/seed")
    sep = "@" if explicit else "~"
    kind, _, target = head.partition(sep)
    if kind not in KINDS:
        raise FaultSpecError(
            f"fault clause {clause!r}: unknown kind {kind!r} "
            f"(expected one of {', '.join(KINDS)})")
    action = FaultAction(kind=kind, **params)
    if kind == "kill" and action.at < 0:
        raise FaultSpecError(
            f"fault clause {clause!r}: kill requires at=<access index>")

    if explicit:
        try:
            indices = tuple(int(part) for part in target.split("+"))
        except ValueError as exc:
            raise FaultSpecError(
                f"fault clause {clause!r}: bad run index in "
                f"{target!r}") from exc
        if any(i < 0 for i in indices):
            raise FaultSpecError(
                f"fault clause {clause!r}: negative run index")
        return FaultClause(action=action, indices=indices)

    count_str, sep, seed_str = target.partition("/")
    if not sep or not count_str or not seed_str:
        raise FaultSpecError(
            f"fault clause {clause!r}: seeded target must be "
            "count/seed")
    try:
        count, seed = int(count_str), int(seed_str)
    except ValueError as exc:
        raise FaultSpecError(
            f"fault clause {clause!r}: bad count/seed {target!r}") from exc
    if count < 0:
        raise FaultSpecError(f"fault clause {clause!r}: negative count")
    return FaultClause(action=action, count=count, seed=seed)


def parse(spec: str) -> List[FaultClause]:
    """Parse a fault spec string into clauses (raises FaultSpecError)."""
    clauses = []
    for part in spec.split(";"):
        part = part.strip()
        if part:
            clauses.append(_parse_clause(part))
    return clauses


@dataclass(frozen=True)
class FaultPlan:
    """A resolved schedule: run index -> the actions targeting it."""

    actions: Dict[int, Tuple[FaultAction, ...]] = field(default_factory=dict)

    def for_run(self, index: int) -> Tuple[FaultAction, ...]:
        return self.actions.get(index, ())

    def checkpoint_actions(self, index: int) -> Tuple[FaultAction, ...]:
        """Actions injected inside the run (everything but ``corrupt``)."""
        return tuple(a for a in self.for_run(index) if a.kind != "corrupt")

    def post_store_actions(self, index: int) -> Tuple[FaultAction, ...]:
        """Actions applied after the run's cache entry is written."""
        return tuple(a for a in self.for_run(index) if a.kind == "corrupt")


def resolve(spec: str, n_runs: int) -> FaultPlan:
    """Resolve a spec against a batch of *n_runs* scheduled runs."""
    actions: Dict[int, List[FaultAction]] = {}
    for clause in parse(spec):
        for index in clause.resolve(n_runs):
            actions.setdefault(index, []).append(clause.action)
    return FaultPlan({i: tuple(a) for i, a in actions.items()})


def plan_from_env(n_runs: int) -> Optional[FaultPlan]:
    """The plan armed via ``REPRO_FAULTS``, or None when unset/empty."""
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return resolve(spec, n_runs)


# ----------------------------------------------------------------------
# Injection points
# ----------------------------------------------------------------------

#: True only in a supervised pool worker (set by the pool initializer,
#: NOT inherited through the environment) so ``crash`` hard-kills a real
#: worker but raises in-process during serial execution.
_IN_POOL_WORKER = False

#: The actions armed for the currently executing run attempt.
_ARMED: Tuple[FaultAction, ...] = ()
_ATTEMPT = 0


def mark_pool_worker() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def arm(actions: Iterable[FaultAction], attempt: int) -> None:
    """Arm *actions* for the run attempt about to execute."""
    global _ARMED, _ATTEMPT
    _ARMED = tuple(actions)
    _ATTEMPT = attempt


def disarm() -> None:
    global _ARMED, _ATTEMPT
    _ARMED = ()
    _ATTEMPT = 0


def checkpoint(site: str = "run") -> None:
    """Fire any armed in-run faults; a no-op when nothing is armed.

    Called by ``simulate_workload`` at the start of every run so injected
    faults surface inside the real execution stack.
    """
    if not _ARMED:
        return
    for action in _ARMED:
        if not action.fires(_ATTEMPT):
            continue
        if action.kind == "hang":
            time.sleep(action.secs)
        elif action.kind == "crash":
            if _IN_POOL_WORKER:
                os._exit(137)
            raise InjectedCrash(
                f"injected worker crash at {site} checkpoint")
        elif action.kind == "error":
            raise InjectedError(
                f"injected transient error at {site} checkpoint")
        elif action.kind == "truncate":
            raise TraceFormatError(
                "<injected>", "injected trace truncation", line=1)


def kill_armed() -> bool:
    """True when a ``kill`` action could fire for the current attempt
    (so the run loop knows to call :func:`access_checkpoint`)."""
    return any(a.kind == "kill" and a.fires(_ATTEMPT) for a in _ARMED)


def access_checkpoint(index: int) -> None:
    """Fire armed ``kill`` faults once access *index* has completed.

    Called by the simulation run loop after every access when a kill is
    armed.  In a pool worker the process dies with ``os._exit(137)``
    (a real SIGKILL-style death: no cleanup, no snapshot flush beyond
    what is already on disk); serially an :class:`InjectedCrash` is
    raised, which the supervisor treats as transient and retries.
    """
    for action in _ARMED:
        if action.kind != "kill" or not action.fires(_ATTEMPT):
            continue
        if index == action.at:
            if _IN_POOL_WORKER:
                os._exit(137)
            raise InjectedCrash(
                f"injected mid-run kill after access {index}")


def corrupt_file(path) -> bool:
    """Garble an on-disk cache entry in place (``corrupt`` faults).

    Rewrites the file as its first half plus a marker that is not valid
    JSON, modelling a torn write.  Returns False if the file is absent.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return False
    path.write_bytes(data[:len(data) // 2] + b"\x00#CORRUPTED#")
    return True
