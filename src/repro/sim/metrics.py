"""Run-level metrics extraction.

``RunMetrics`` snapshots everything the paper's evaluation reports from one
simulation run (Figs. 8-15): IPC, per-level coverage/accuracy/latency, the
boundary-discard counters behind Fig. 2, TLB/DRAM behaviour, and the
allocator's THP usage.  Snapshotting into plain numbers decouples analysis
from live simulator objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.composite import CompositePSAPrefetcher
from repro.core.psa import PSAPrefetchModule
from repro.cpu.core import CoreResult
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetch.base import BoundaryStats


@dataclass
class RunMetrics:
    """All measured quantities of one (workload, configuration) run."""

    workload: str = ""
    prefetcher: str = "none"
    variant: str = "none"
    # Core
    ipc: float = 0.0
    instructions: int = 0
    cycles: float = 0.0
    memory_accesses: int = 0
    #: ROB stall cycles per memory access — the timeliness cost measure
    #: used in place of the paper's raw access-latency averages (see
    #: EXPERIMENTS.md: summed latencies double-count overlapped waits in a
    #: merge-based model).
    stalls_per_access: float = 0.0
    # L1D
    l1d_mpki: float = 0.0
    avg_load_latency: float = 0.0
    # L2C
    l2_demand_accesses: int = 0
    l2_demand_misses: int = 0
    l2_mpki: float = 0.0
    l2_coverage: float = 0.0
    l2_accuracy: float = 0.0
    l2_avg_latency: float = 0.0
    l2_useful_prefetches: int = 0
    # LLC
    llc_demand_misses: int = 0
    llc_mpki: float = 0.0
    llc_coverage: float = 0.0
    llc_accuracy: float = 0.0
    llc_avg_latency: float = 0.0
    llc_useful_prefetches: int = 0
    # Prefetch issue accounting
    pf_issued_l2: int = 0
    pf_issued_llc: int = 0
    pf_dropped_mshr: int = 0
    pf_redundant: int = 0
    # Boundary behaviour (Fig. 2)
    boundary: BoundaryStats = field(default_factory=BoundaryStats)
    # VM / DRAM
    stlb_miss_ratio: float = 0.0
    page_walks: int = 0
    dram_row_hit_ratio: float = 0.0
    dram_reads: int = 0
    thp_usage: float = 0.0
    # Set-Dueling diagnostics
    sd_follower_psa_fraction: float = 0.0
    sd_follower_psa_2mb_fraction: float = 0.0
    #: Engine accounting: wall-clock seconds this run took to simulate.
    #: Excluded from equality so parallel/cached results still compare
    #: bitwise-equal to serial uncached ones.
    wall_time_s: float = field(default=0.0, compare=False)

    @property
    def pf_issued_total(self) -> int:
        return self.pf_issued_l2 + self.pf_issued_llc

    @property
    def accesses_per_sec(self) -> float:
        """Measured-phase simulation throughput of this run."""
        return (self.memory_accesses / self.wall_time_s
                if self.wall_time_s else 0.0)

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """IPC ratio vs a baseline run of the same workload."""
        if baseline.workload != self.workload:
            raise ValueError(
                f"speedup across different workloads: "
                f"{self.workload!r} vs {baseline.workload!r}")
        return self.ipc / baseline.ipc if baseline.ipc else 0.0


def module_boundary_stats(module) -> BoundaryStats:
    """Aggregate BoundaryStats across a module's component prefetchers."""
    stats = BoundaryStats()
    if isinstance(module, PSAPrefetchModule):
        stats.merge(module.stats)
    elif isinstance(module, CompositePSAPrefetcher):
        stats.merge(module.stats_psa)
        stats.merge(module.stats_psa_2mb)
    return stats


def collect_metrics(workload: str, prefetcher: str, variant: str,
                    hierarchy: MemoryHierarchy, core_result: CoreResult,
                    module=None) -> RunMetrics:
    """Snapshot a finished run into a RunMetrics record."""
    module = module if module is not None else hierarchy.l2_module
    metrics = RunMetrics(workload=workload, prefetcher=prefetcher,
                         variant=variant)
    metrics.ipc = core_result.ipc
    metrics.instructions = core_result.instructions
    metrics.cycles = core_result.cycles
    metrics.memory_accesses = core_result.memory_accesses
    if core_result.memory_accesses:
        metrics.stalls_per_access = (core_result.stall_cycles
                                     / core_result.memory_accesses)
    metrics.l1d_mpki = core_result.mpki_of(hierarchy.l1d.demand_misses)
    metrics.avg_load_latency = hierarchy.avg_load_latency()
    metrics.l2_demand_accesses = hierarchy.l2c.demand_accesses
    metrics.l2_demand_misses = hierarchy.l2c.demand_misses
    metrics.l2_mpki = core_result.mpki_of(hierarchy.l2c.demand_misses)
    metrics.l2_coverage = hierarchy.l2_coverage()
    metrics.l2_accuracy = hierarchy.l2_accuracy()
    metrics.l2_avg_latency = hierarchy.l2_avg_demand_latency()
    metrics.l2_useful_prefetches = hierarchy.l2c.useful_prefetches
    metrics.llc_demand_misses = hierarchy.llc.demand_misses
    metrics.llc_mpki = core_result.mpki_of(hierarchy.llc.demand_misses)
    metrics.llc_coverage = hierarchy.llc_coverage()
    metrics.llc_accuracy = hierarchy.llc_accuracy()
    metrics.llc_avg_latency = hierarchy.llc_avg_demand_latency()
    metrics.llc_useful_prefetches = hierarchy.llc.useful_prefetches
    metrics.pf_issued_l2 = hierarchy.pf_issued_l2
    metrics.pf_issued_llc = hierarchy.pf_issued_llc
    metrics.pf_dropped_mshr = hierarchy.pf_dropped_mshr
    metrics.pf_redundant = hierarchy.pf_redundant
    metrics.boundary = module_boundary_stats(module)
    metrics.stlb_miss_ratio = hierarchy.translator.stlb.miss_ratio()
    metrics.page_walks = hierarchy.translator.walks
    metrics.dram_row_hit_ratio = hierarchy.dram.row_hit_ratio()
    metrics.dram_reads = hierarchy.dram.reads
    metrics.thp_usage = hierarchy.allocator.thp_usage_fraction()
    if isinstance(module, CompositePSAPrefetcher):
        psa_frac, psa_2mb_frac = module.selection_fractions()
        metrics.sd_follower_psa_fraction = psa_frac
        metrics.sd_follower_psa_2mb_fraction = psa_2mb_frac
    return metrics
