"""Experiment engine: batched, parallel, persistently cached simulation.

The benchmarks regenerate many figures from overlapping sets of runs (e.g.
the SPP-original baseline appears in Figs. 4, 5, 8, 10, 11, 12).  The
engine removes that redundancy at three levels:

1. **Deduplication** — ``run_batch`` collapses requests with identical
   fingerprints, so a shared baseline is simulated once per batch.
2. **Caching** — finished ``RunMetrics`` are memoised in-process *and*
   persisted to a content-addressed on-disk cache (``repro.sim.cache``),
   so they survive across pytest sessions and CLI invocations.
3. **Parallelism** — unique uncached runs are fanned out over a
   ``ProcessPoolExecutor`` sized by ``REPRO_JOBS`` (default: all cores;
   ``1`` recovers the serial path), then results fan back in request
   order.  Runs are deterministic (see the stable allocator seeding in
   ``repro.sim.simulator``), so parallel metrics are bitwise-equal to
   serial ones.
4. **Supervision** — execution is delegated to ``repro.sim.supervisor``:
   per-run watchdog timeouts (``REPRO_RUN_TIMEOUT``), retry with
   exponential backoff for transient failures (``REPRO_MAX_RETRIES``),
   pool-break recovery (one rebuild, then serial fallback), and
   per-completion checkpointing to the on-disk cache so a killed batch
   resumes where it left off.  ``run_batch(strict=False)`` returns a
   ``BatchResult`` of per-request outcomes instead of raising on the
   first failure; deterministic fault injection (``REPRO_FAULTS``, see
   ``repro.sim.faults``) exercises every one of those paths.

``run``/``speedup``/``speedups_over_baseline``/``variant_sweep``/
``run_many``/``pair_metrics`` are all thin frontends over ``run_batch``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.sim import cache as disk_cache
from repro.sim import config
from repro.sim import faults, supervisor
from repro.sim.supervisor import (   # re-exported for callers
    BatchResult,
    RunFailure,
    RunOutcome,
)
from repro.sim.config import DuelingConfig, SystemConfig, accesses_for_scale
from repro.sim.metrics import RunMetrics
from repro.sim.simulator import simulate_workload
from repro.workloads.suites import WorkloadSpec

_CACHE: Dict[tuple, RunMetrics] = {}

#: Set in pool workers so nested engine calls never spawn a second pool.
_IN_WORKER_ENV = "REPRO_IN_WORKER"


def job_count() -> int:
    """Worker-pool width: ``REPRO_JOBS`` env, default ``os.cpu_count()``."""
    if os.environ.get(_IN_WORKER_ENV):
        return 1
    jobs = config.env_int("REPRO_JOBS", 0)
    return jobs if jobs > 0 else (os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------

def _freeze(value):
    """Recursively convert a value into a hashable, order-stable tuple."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return tuple((f.name, _freeze(getattr(value, f.name)))
                     for f in dataclasses.fields(value))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def config_fingerprint(config: SystemConfig,
                       dueling: Optional[DuelingConfig] = None) -> tuple:
    """Complete fingerprint of a system configuration.

    Derived automatically from *every* dataclass field (recursively), so new
    configuration knobs can never be forgotten and two different configs can
    never collide in the cache.  ``dueling`` is the optional per-run
    override that ``make_l2_module`` applies over ``config.dueling``.
    """
    duel = dueling if dueling is not None else config.dueling
    return (_freeze(config), ("dueling", _freeze(duel)))


@dataclass
class RunRequest:
    """One (workload, prefetcher, variant, configuration) simulation."""

    workload: Union[str, WorkloadSpec]
    prefetcher: str = "spp"
    variant: str = "psa"
    l1d: str = "none"
    oracle_page_size: bool = False
    n_accesses: Optional[int] = None
    table_scale: float = 1.0
    gb_fraction: float = 0.0
    config: Optional[SystemConfig] = None
    dueling: Optional[DuelingConfig] = None

    def resolved(self) -> "RunRequest":
        """Fill scale/config defaults so the fingerprint is self-contained."""
        config = self.config if self.config is not None else SystemConfig()
        return dataclasses.replace(
            self,
            n_accesses=(self.n_accesses if self.n_accesses is not None
                        else accesses_for_scale()),
            config=config,
            dueling=self.dueling if self.dueling is not None
            else config.dueling)

    def key(self) -> tuple:
        """Complete fingerprint, derived automatically from every field.

        ``_freeze`` recurses through the request and all nested dataclasses
        (``SystemConfig``, its cache/TLB/DRAM/dueling members, a
        ``WorkloadSpec`` workload), so adding a knob anywhere automatically
        widens the key — two different configurations can never collide.
        """
        return ("run", _freeze(self.resolved()))


# ----------------------------------------------------------------------
# Engine statistics
# ----------------------------------------------------------------------

@dataclass
class EngineStats:
    """Cumulative accounting of what the engine did this process."""

    requests: int = 0
    deduped: int = 0          # requests collapsed onto an in-batch twin
    memo_hits: int = 0        # served from the in-process memo
    disk_hits: int = 0        # served from the on-disk cache
    simulated: int = 0        # actually executed (and succeeded)
    sim_wall_s: float = 0.0   # summed per-run wall time (all workers)
    batch_wall_s: float = 0.0  # wall time spent inside run_batch
    simulated_accesses: int = 0  # trace records executed (incl. warmup)
    failed: int = 0           # runs that exhausted retries
    timeouts: int = 0         # runs killed by the watchdog
    retries: int = 0          # extra attempts scheduled
    pool_rebuilds: int = 0    # broken pools rebuilt
    serial_fallbacks: int = 0  # batches degraded to serial execution

    @property
    def cache_hits(self) -> int:
        return self.deduped + self.memo_hits + self.disk_hits

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def accesses_per_sec(self) -> float:
        """Aggregate simulation throughput over engine wall time."""
        return (self.simulated_accesses / self.batch_wall_s
                if self.batch_wall_s else 0.0)

    def to_dict(self) -> dict:
        """Machine-readable snapshot: every counter plus the derived
        rates, so campaign tooling and outside scripts never have to
        parse ``summary_line`` text."""
        data = {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}
        data["cache_hits"] = self.cache_hits
        data["cache_hit_rate"] = self.cache_hit_rate
        data["accesses_per_sec"] = self.accesses_per_sec
        return data

    def summary_line(self) -> str:
        line = (f"engine: {self.requests} requests "
                f"({self.simulated} simulated, {self.memo_hits} memo, "
                f"{self.disk_hits} disk, {self.deduped} deduped) | "
                f"cache hit-rate {self.cache_hit_rate * 100:.1f}% | "
                f"{self.simulated_accesses:,} accesses in "
                f"{self.batch_wall_s:.2f}s = "
                f"{self.accesses_per_sec:,.0f} accesses/s")
        if self.failed or self.timeouts or self.retries:
            line += (f" | {self.failed} failed, {self.timeouts} timed out, "
                     f"{self.retries} retried")
        return line


_STATS = EngineStats()


def engine_stats() -> EngineStats:
    """The process-wide cumulative engine statistics."""
    return _STATS


def reset_engine_stats() -> None:
    global _STATS
    _STATS = EngineStats()


def clear_cache() -> None:
    """Drop the in-process memo (the disk cache is left untouched)."""
    _CACHE.clear()


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

def _execute(request: RunRequest) -> RunMetrics:
    """Simulate one resolved request, stamping per-run wall time.

    The request's fingerprint doubles as the snapshot key: when
    ``REPRO_SNAPSHOT_EVERY`` is set, a retried/resumed attempt of the
    same request picks up its own mid-run checkpoint automatically.
    """
    start = time.perf_counter()
    metrics = simulate_workload(
        request.workload, config=request.config,
        prefetcher=request.prefetcher, variant=request.variant,
        l1d=request.l1d, oracle_page_size=request.oracle_page_size,
        n_accesses=request.n_accesses, table_scale=request.table_scale,
        gb_fraction=request.gb_fraction, dueling=request.dueling,
        snapshot_key=request.key())
    metrics.wall_time_s = time.perf_counter() - start
    return metrics


def _worker_init() -> None:
    os.environ[_IN_WORKER_ENV] = "1"


def _coerce(request) -> RunRequest:
    if isinstance(request, RunRequest):
        return request
    if isinstance(request, dict):
        return RunRequest(**request)
    raise TypeError(f"expected RunRequest or dict, got {type(request)!r}")


def run_batch(requests: Iterable[Union[RunRequest, dict]],
              jobs: Optional[int] = None,
              use_cache: bool = True,
              strict: bool = True,
              timeout: Optional[float] = None,
              retries: Optional[int] = None,
              fail_fast: Optional[bool] = None
              ) -> Union[List[RunMetrics], BatchResult]:
    """Execute a batch of runs under supervision.

    Requests are deduplicated by fingerprint; unique misses (after the
    in-process memo and the on-disk cache) are scheduled across a process
    pool of ``jobs`` workers (default ``REPRO_JOBS``) under
    ``repro.sim.supervisor``: per-run watchdog ``timeout`` (default
    ``REPRO_RUN_TIMEOUT``), up to ``retries`` extra attempts for
    transient failures (default ``REPRO_MAX_RETRIES``), broken-pool
    rebuild then serial fallback, and per-completion cache
    checkpointing.  With ``use_cache=False`` every request is simulated
    fresh and nothing is read from or written to either cache.

    With ``strict=True`` (the default) the first failure re-raises its
    original exception and a plain ``List[RunMetrics]`` is returned in
    request order.  With ``strict=False`` a :class:`BatchResult` of
    per-request :class:`RunOutcome` records is returned and no exception
    propagates.  ``fail_fast`` (default: the value of ``strict``)
    controls whether remaining runs are skipped after the first failure.
    """
    batch_start = time.perf_counter()
    reqs = [_coerce(r).resolved() for r in requests]
    keys = [r.key() for r in reqs]
    _STATS.requests += len(reqs)

    outcomes: Dict[tuple, RunOutcome] = {}
    pending: List[Tuple[tuple, RunRequest]] = []
    scheduled = set()
    for key, req in zip(keys, reqs):
        if key in outcomes or key in scheduled:
            _STATS.deduped += 1
            continue
        if use_cache:
            memo = _CACHE.get(key)
            if memo is not None:
                outcomes[key] = RunOutcome(status=supervisor.OK,
                                           metrics=memo, source="memo")
                _STATS.memo_hits += 1
                continue
            disk = disk_cache.load(key)
            if disk is not None:
                outcomes[key] = RunOutcome(status=supervisor.OK,
                                           metrics=disk, source="disk")
                _CACHE[key] = disk
                _STATS.disk_hits += 1
                continue
        scheduled.add(key)
        pending.append((key, req))

    if pending:
        width = min(jobs if jobs is not None else job_count(), len(pending))
        plan = faults.plan_from_env(len(pending))
        resolved_timeout = (supervisor.run_timeout() if timeout is None
                            else (timeout if timeout > 0 else None))
        resolved_retries = (supervisor.max_retries() if retries is None
                            else max(0, retries))

        def _checkpoint(index: int, metrics: RunMetrics) -> None:
            key = pending[index][0]
            if use_cache:
                _CACHE[key] = metrics
                disk_cache.store(key, metrics)
                if plan is not None:
                    for _ in plan.post_store_actions(index):
                        faults.corrupt_file(disk_cache.entry_path(key))

        run_outcomes, sup_stats = supervisor.supervise(
            [req for _, req in pending], width=width,
            timeout=resolved_timeout, retries=resolved_retries,
            plan=plan, on_result=_checkpoint,
            fail_fast=strict if fail_fast is None else fail_fast)

        for (key, req), outcome in zip(pending, run_outcomes):
            outcomes[key] = outcome
            if outcome.ok:
                _STATS.simulated += 1
                _STATS.sim_wall_s += outcome.metrics.wall_time_s
                _STATS.simulated_accesses += req.n_accesses
        _STATS.retries += sup_stats.retries
        _STATS.failed += sup_stats.failed
        _STATS.timeouts += sup_stats.timeouts
        _STATS.pool_rebuilds += sup_stats.pool_rebuilds
        _STATS.serial_fallbacks += int(sup_stats.serial_fallback)

    _STATS.batch_wall_s += time.perf_counter() - batch_start
    ordered = [outcomes[key] for key in keys]
    if strict:
        bad = [o for o in ordered if not o.ok]
        if bad:
            # Prefer the run that actually failed over any skipped runs
            # that merely trailed it under fail-fast.
            primary = next((o for o in bad if o.failure is not None), bad[0])
            supervisor.reraise(primary)
        return [o.metrics for o in ordered]
    return BatchResult(ordered, requests=reqs)


def parallel_map(fn: Callable, items: Sequence,
                 jobs: Optional[int] = None) -> List:
    """Map a picklable function over items on the engine's worker pool.

    Used for work that is parallel but not ``RunMetrics``-shaped (e.g. the
    multi-core mix simulations).  Falls back to a plain loop when the pool
    width is 1 or there is nothing to parallelise.
    """
    items = list(items)
    width = min(jobs if jobs is not None else job_count(), len(items))
    if width <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=width,
                                 initializer=_worker_init) as pool:
            return list(pool.map(fn, items))
    except BrokenProcessPool:
        # Degrade to in-process serial execution rather than dying.
        _STATS.serial_fallbacks += 1
        return [fn(item) for item in items]


# ----------------------------------------------------------------------
# Frontends (all batched under the hood)
# ----------------------------------------------------------------------

def run(workload: str, prefetcher: str = "spp", variant: str = "psa",
        config: Optional[SystemConfig] = None, l1d: str = "none",
        oracle_page_size: bool = False, n_accesses: Optional[int] = None,
        table_scale: float = 1.0,
        dueling: Optional[DuelingConfig] = None,
        use_cache: bool = True) -> RunMetrics:
    """Simulate one workload under one configuration (cached)."""
    request = RunRequest(
        workload, prefetcher, variant, l1d=l1d,
        oracle_page_size=oracle_page_size, n_accesses=n_accesses,
        table_scale=table_scale, config=config, dueling=dueling)
    return run_batch([request], use_cache=use_cache)[0]


def _target_request(workload, prefetcher, variant, config, n_accesses,
                    **kwargs) -> RunRequest:
    return RunRequest(workload, prefetcher, variant, config=config,
                      n_accesses=n_accesses, **kwargs)


def speedup(workload: str, prefetcher: str, variant: str,
            baseline_variant: str = "original",
            baseline_prefetcher: Optional[str] = None,
            config: Optional[SystemConfig] = None,
            n_accesses: Optional[int] = None,
            **kwargs) -> float:
    """IPC ratio of (prefetcher, variant) over the baseline variant."""
    use_cache = kwargs.pop("use_cache", True)
    target, base = run_batch([
        _target_request(workload, prefetcher, variant, config, n_accesses,
                        **kwargs),
        RunRequest(workload, baseline_prefetcher or prefetcher,
                   baseline_variant, config=config, n_accesses=n_accesses),
    ], use_cache=use_cache)
    return target.speedup_over(base)


def speedups_over_baseline(workloads: Iterable[str], prefetcher: str,
                           variant: str, baseline_variant: str = "original",
                           config: Optional[SystemConfig] = None,
                           n_accesses: Optional[int] = None,
                           **kwargs) -> Dict[str, float]:
    """Per-workload speedups of one variant over the baseline (one batch)."""
    use_cache = kwargs.pop("use_cache", True)
    workloads = list(workloads)
    requests = [_target_request(w, prefetcher, variant, config, n_accesses,
                                **kwargs) for w in workloads]
    requests += [RunRequest(w, prefetcher, baseline_variant, config=config,
                            n_accesses=n_accesses) for w in workloads]
    metrics = run_batch(requests, use_cache=use_cache)
    targets, bases = metrics[:len(workloads)], metrics[len(workloads):]
    return {w: t.speedup_over(b)
            for w, t, b in zip(workloads, targets, bases)}


def variant_sweep(workloads: Iterable[str], prefetcher: str,
                  variants: Iterable[str],
                  baseline_variant: str = "original",
                  config: Optional[SystemConfig] = None,
                  n_accesses: Optional[int] = None,
                  **kwargs) -> Dict[str, Dict[str, float]]:
    """variant -> {workload -> speedup over baseline}, as one batch."""
    use_cache = kwargs.pop("use_cache", True)
    workloads = list(workloads)
    variants = list(variants)
    requests = [_target_request(w, prefetcher, v, config, n_accesses,
                                **kwargs)
                for v in variants for w in workloads]
    requests += [RunRequest(w, prefetcher, baseline_variant, config=config,
                            n_accesses=n_accesses) for w in workloads]
    metrics = run_batch(requests, use_cache=use_cache)
    bases = dict(zip(workloads, metrics[len(variants) * len(workloads):]))
    sweep: Dict[str, Dict[str, float]] = {}
    for i, variant in enumerate(variants):
        row = metrics[i * len(workloads):(i + 1) * len(workloads)]
        sweep[variant] = {w: t.speedup_over(bases[w])
                          for w, t in zip(workloads, row)}
    return sweep


def run_many(workloads: Iterable[str], prefetcher: str, variant: str,
             config: Optional[SystemConfig] = None,
             n_accesses: Optional[int] = None,
             **kwargs) -> List[RunMetrics]:
    use_cache = kwargs.pop("use_cache", True)
    return run_batch(
        [_target_request(w, prefetcher, variant, config, n_accesses,
                         **kwargs) for w in workloads],
        use_cache=use_cache)


def pair_metrics(workload: str, prefetcher: str, variant: str,
                 baseline_variant: str = "original",
                 config: Optional[SystemConfig] = None,
                 n_accesses: Optional[int] = None,
                 **kwargs) -> Tuple[RunMetrics, RunMetrics]:
    """(variant run, baseline run) for delta metrics (Fig. 10)."""
    use_cache = kwargs.pop("use_cache", True)
    target, base = run_batch([
        _target_request(workload, prefetcher, variant, config, n_accesses,
                        **kwargs),
        RunRequest(workload, prefetcher, baseline_variant, config=config,
                   n_accesses=n_accesses),
    ], use_cache=use_cache)
    return target, base


def pair_metrics_many(workloads: Iterable[str], prefetcher: str,
                      variant: str, baseline_variant: str = "original",
                      config: Optional[SystemConfig] = None,
                      n_accesses: Optional[int] = None,
                      **kwargs) -> Dict[str, Tuple[RunMetrics, RunMetrics]]:
    """Batched ``pair_metrics`` across workloads (one engine batch)."""
    use_cache = kwargs.pop("use_cache", True)
    workloads = list(workloads)
    requests = [_target_request(w, prefetcher, variant, config, n_accesses,
                                **kwargs) for w in workloads]
    requests += [RunRequest(w, prefetcher, baseline_variant, config=config,
                            n_accesses=n_accesses) for w in workloads]
    metrics = run_batch(requests, use_cache=use_cache)
    return {w: (t, b) for w, t, b in zip(
        workloads, metrics[:len(workloads)], metrics[len(workloads):])}
