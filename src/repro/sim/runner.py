"""Experiment runner: cached simulation plus speedup conveniences.

The benchmarks regenerate many figures from overlapping sets of runs (e.g.
the SPP-original baseline appears in Figs. 4, 5, 8, 10, 11, 12).  The
runner memoises finished ``RunMetrics`` by a configuration fingerprint so
one pytest session never repeats a run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.config import DuelingConfig, SystemConfig, accesses_for_scale
from repro.sim.metrics import RunMetrics
from repro.sim.simulator import simulate_workload

_CACHE: Dict[tuple, RunMetrics] = {}


def _fingerprint(config: SystemConfig,
                 dueling: Optional[DuelingConfig]) -> tuple:
    duel = dueling if dueling is not None else config.dueling
    return (
        config.l2c.size_bytes, config.l2c.mshr_entries,
        config.llc.size_bytes, config.llc.mshr_entries,
        config.dram.transfer_rate_mts, config.dram.channels,
        config.ppm_enabled, config.ppm_to_llc,
        duel.leader_sets, duel.csel_bits, duel.policy,
    )


def clear_cache() -> None:
    _CACHE.clear()


def run(workload: str, prefetcher: str = "spp", variant: str = "psa",
        config: Optional[SystemConfig] = None, l1d: str = "none",
        oracle_page_size: bool = False, n_accesses: Optional[int] = None,
        table_scale: float = 1.0,
        dueling: Optional[DuelingConfig] = None,
        use_cache: bool = True) -> RunMetrics:
    """Simulate one workload under one configuration (memoised)."""
    config = config if config is not None else SystemConfig()
    n = n_accesses if n_accesses is not None else accesses_for_scale()
    key = (workload, prefetcher, variant, l1d, oracle_page_size, n,
           table_scale, _fingerprint(config, dueling))
    if use_cache and key in _CACHE:
        return _CACHE[key]
    metrics = simulate_workload(
        workload, config=config, prefetcher=prefetcher, variant=variant,
        l1d=l1d, oracle_page_size=oracle_page_size, n_accesses=n,
        table_scale=table_scale, dueling=dueling)
    if use_cache:
        _CACHE[key] = metrics
    return metrics


def speedup(workload: str, prefetcher: str, variant: str,
            baseline_variant: str = "original",
            baseline_prefetcher: Optional[str] = None,
            config: Optional[SystemConfig] = None,
            n_accesses: Optional[int] = None,
            **kwargs) -> float:
    """IPC ratio of (prefetcher, variant) over the baseline variant."""
    target = run(workload, prefetcher, variant, config=config,
                 n_accesses=n_accesses, **kwargs)
    base = run(workload, baseline_prefetcher or prefetcher, baseline_variant,
               config=config, n_accesses=n_accesses)
    return target.speedup_over(base)


def speedups_over_baseline(workloads: Iterable[str], prefetcher: str,
                           variant: str, baseline_variant: str = "original",
                           config: Optional[SystemConfig] = None,
                           n_accesses: Optional[int] = None,
                           **kwargs) -> Dict[str, float]:
    """Per-workload speedups of one variant over the baseline."""
    return {w: speedup(w, prefetcher, variant, baseline_variant,
                       config=config, n_accesses=n_accesses, **kwargs)
            for w in workloads}


def variant_sweep(workloads: Iterable[str], prefetcher: str,
                  variants: Iterable[str],
                  baseline_variant: str = "original",
                  config: Optional[SystemConfig] = None,
                  n_accesses: Optional[int] = None,
                  **kwargs) -> Dict[str, Dict[str, float]]:
    """variant -> {workload -> speedup over baseline}."""
    workloads = list(workloads)
    return {variant: speedups_over_baseline(
                workloads, prefetcher, variant, baseline_variant,
                config=config, n_accesses=n_accesses, **kwargs)
            for variant in variants}


def run_many(workloads: Iterable[str], prefetcher: str, variant: str,
             config: Optional[SystemConfig] = None,
             n_accesses: Optional[int] = None,
             **kwargs) -> List[RunMetrics]:
    return [run(w, prefetcher, variant, config=config,
                n_accesses=n_accesses, **kwargs) for w in workloads]


def pair_metrics(workload: str, prefetcher: str, variant: str,
                 baseline_variant: str = "original",
                 config: Optional[SystemConfig] = None,
                 n_accesses: Optional[int] = None,
                 **kwargs) -> Tuple[RunMetrics, RunMetrics]:
    """(variant run, baseline run) for delta metrics (Fig. 10)."""
    target = run(workload, prefetcher, variant, config=config,
                 n_accesses=n_accesses, **kwargs)
    base = run(workload, prefetcher, baseline_variant, config=config,
               n_accesses=n_accesses)
    return target, base
