"""Persistent on-disk result cache for finished simulation runs.

The figure benchmarks regenerate overlapping (workload, prefetcher,
variant, config) runs across *pytest sessions*, not just within one; the
in-process memo in ``repro.sim.runner`` cannot help there.  This module
stores finished ``RunMetrics`` on disk, content-addressed by the complete
run fingerprint, so a warm re-run of any figure driver is served from disk
instead of re-simulating.

Layout (under ``REPRO_CACHE_DIR`` or ``~/.cache/repro``)::

    objects/<2-hex fan-out>/<sha256 of salted key>.json

Each entry is a standalone JSON document carrying the serialization
``version``, the code-version ``salt`` and the full ``key`` repr (for
auditability) plus the ``metrics`` payload.  Guarantees:

- **Atomic writes**: entries are written to a temp file in the same
  directory and ``os.replace``d into place, so concurrent writers (parallel
  workers, parallel pytest sessions) can never expose a torn entry.
- **Corruption tolerance**: any unreadable/undecodable/mis-shaped entry is
  treated as a miss and quarantined to ``<cache>/quarantine/`` (never an
  exception, never a silent delete) so torn writes remain auditable;
  ``verify`` scans the whole cache and ``verify(prune=True)`` quarantines
  corrupt and version-stale entries in bulk (``repro cache verify``).
- **Versioned invalidation**: the key is salted with ``CACHE_VERSION`` and
  ``CODE_VERSION``; bumping either orphans every old entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.prefetch.base import BoundaryStats
from repro.sim import iofaults
from repro.sim.metrics import RunMetrics

#: Serialization format version: bump when the on-disk payload shape or the
#: fields of ``RunMetrics``/``BoundaryStats`` change incompatibly.
CACHE_VERSION = 1

#: Code-version salt: bump whenever simulation *semantics* change so that
#: results produced by older code can never be returned for new runs.
CODE_VERSION = "2026-08-05.3"


def cache_enabled() -> bool:
    """Disk cache on/off switch (``REPRO_DISK_CACHE=0`` disables)."""
    return os.environ.get("REPRO_DISK_CACHE", "1").lower() not in (
        "0", "off", "no", "false")


def cache_dir() -> Path:
    """Cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def _salt() -> str:
    return f"{CACHE_VERSION}:{CODE_VERSION}"


def key_digest(key: tuple) -> str:
    """Content address of one run key, salted by the cache/code version."""
    return hashlib.sha256(repr((_salt(), key)).encode()).hexdigest()


def entry_path(key: tuple) -> Path:
    digest = key_digest(key)
    return cache_dir() / "objects" / digest[:2] / f"{digest[2:]}.json"


def quarantine_dir() -> Path:
    """Where unreadable/stale entries are moved instead of deleted."""
    return cache_dir() / "quarantine"


def _quarantine(path: Path) -> Optional[Path]:
    """Move a bad entry into the quarantine directory.

    Falls back to unlinking when the move itself fails (e.g. read-only
    quarantine dir), so a bad entry can never keep poisoning lookups.
    Returns the quarantined path, or None when the entry was unlinked.
    """
    try:
        quarantine_dir().mkdir(parents=True, exist_ok=True)
        dest = quarantine_dir() / path.name
        serial = 0
        while dest.exists():
            # Never overwrite earlier quarantined evidence: probe
            # pid-and-serial suffixes until a free name is found.
            serial += 1
            dest = (quarantine_dir()
                    / f"{path.stem}.{os.getpid()}.{serial}{path.suffix}")
        os.replace(path, dest)
        return dest
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        return None


# ----------------------------------------------------------------------
# RunMetrics (de)serialization
# ----------------------------------------------------------------------

def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Flatten a RunMetrics (including BoundaryStats) to JSON-safe types."""
    data = {f.name: getattr(metrics, f.name)
            for f in dataclasses.fields(metrics) if f.name != "boundary"}
    data["boundary"] = {slot: getattr(metrics.boundary, slot)
                        for slot in BoundaryStats.__slots__}
    return data


def metrics_from_dict(data: dict) -> RunMetrics:
    """Rebuild a RunMetrics; unknown keys are ignored, missing use defaults."""
    known = {f.name for f in dataclasses.fields(RunMetrics)}
    fields = {k: v for k, v in data.items()
              if k in known and k != "boundary"}
    metrics = RunMetrics(**fields)
    for slot, value in data.get("boundary", {}).items():
        if slot in BoundaryStats.__slots__:
            setattr(metrics.boundary, slot, value)
    return metrics


# ----------------------------------------------------------------------
# Load / store
# ----------------------------------------------------------------------

def store(key: tuple, metrics: RunMetrics) -> bool:
    """Atomically persist one finished run; returns False when disabled."""
    if not cache_enabled():
        return False
    path = entry_path(key)
    payload = {
        "version": CACHE_VERSION,
        "salt": _salt(),
        "key": repr(key),
        "metrics": metrics_to_dict(metrics),
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        os.close(fd)
        try:
            # Full crash-consistent publish: write + fsync the temp
            # file, atomic rename, fsync the directory — a power loss
            # at any instant leaves the old entry or the new one,
            # never a torn mix (and the entry itself is durable, not
            # just the rename).
            iofaults.publish_bytes(
                "cache", path, json.dumps(payload).encode(), tmp)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False                # cache dir unwritable -> run uncached
    return True


def load_payload(key: tuple) -> Optional[dict]:
    """Fetch one run's *serialized* metrics dict exactly as stored.

    This is the serving layer's hot admission path: returning the raw
    on-disk dict (instead of a rebuilt ``RunMetrics``) makes a cache-hit
    response bitwise-identical to the JSON any other reader of the same
    entry would serialize, with no decode/re-encode in between.  Any
    corruption or version mismatch is a miss (corrupt entries are
    quarantined, exactly like :func:`load`).
    """
    if not cache_enabled():
        return None
    path = entry_path(key)
    try:
        payload = json.loads(iofaults.read_bytes("cache.read", path))
        if (payload.get("version") != CACHE_VERSION
                or payload.get("salt") != _salt()):
            return None
        metrics = payload["metrics"]
        if not isinstance(metrics, dict):
            raise TypeError("metrics payload is not a dict")
        return metrics
    except FileNotFoundError:
        return None
    except (OSError, ValueError, TypeError, KeyError):
        # Torn/garbled entry (e.g. crashed writer on a non-atomic
        # filesystem): quarantine it so the slot heals on the next
        # store while the bad bytes stay auditable.
        _quarantine(path)
        return None


def load(key: tuple) -> Optional[RunMetrics]:
    """Fetch one run from disk; any corruption or mismatch is a miss."""
    payload = load_payload(key)
    if payload is None:
        return None
    try:
        return metrics_from_dict(payload)
    except (ValueError, TypeError, KeyError):
        _quarantine(entry_path(key))
        return None


# ----------------------------------------------------------------------
# Maintenance (powers the `repro cache` CLI subcommand)
# ----------------------------------------------------------------------

@dataclass
class CacheStats:
    """Summary of the on-disk cache state."""

    directory: Path
    entries: int = 0
    total_bytes: int = 0

    def describe(self) -> str:
        size_kb = self.total_bytes / 1024
        state = "enabled" if cache_enabled() else "disabled (REPRO_DISK_CACHE)"
        return (f"cache dir : {self.directory}\n"
                f"state     : {state}\n"
                f"entries   : {self.entries}\n"
                f"size      : {size_kb:.1f} KiB\n"
                f"version   : {_salt()}")


@dataclass
class CacheEntry:
    """Metadata of one persisted run (for ``repro cache list``)."""

    path: Path
    size_bytes: int = 0
    workload: str = "?"
    prefetcher: str = "?"
    variant: str = "?"
    current: bool = False   # entry salt matches the running code version

    def to_dict(self) -> dict:
        """JSON-safe row for ``repro cache list --json`` consumers."""
        return {"path": str(self.path), "size_bytes": self.size_bytes,
                "workload": self.workload, "prefetcher": self.prefetcher,
                "variant": self.variant, "current": self.current}


def list_entries() -> "list[CacheEntry]":
    """Enumerate every readable cache entry, newest first.

    Corrupt entries are skipped (``load`` heals them lazily); entries
    written by older code versions are listed with ``current=False`` so
    stale bulk can be spotted before a ``clear``.
    """
    objects = cache_dir() / "objects"
    entries: list[CacheEntry] = []
    if not objects.is_dir():
        return entries
    stamped = []
    for path in objects.glob("*/*.json"):
        try:
            stat_result = path.stat()
            payload = json.loads(path.read_text())
            metrics = payload.get("metrics", {})
            entry = CacheEntry(
                path=path, size_bytes=stat_result.st_size,
                workload=str(metrics.get("workload", "?")),
                prefetcher=str(metrics.get("prefetcher", "?")),
                variant=str(metrics.get("variant", "?")),
                current=payload.get("salt") == _salt())
            stamped.append((stat_result.st_mtime, entry))
        except (OSError, ValueError, TypeError):
            continue
    stamped.sort(key=lambda pair: pair[0], reverse=True)
    return [entry for _, entry in stamped]


def stats() -> CacheStats:
    result = CacheStats(directory=cache_dir())
    objects = cache_dir() / "objects"
    if not objects.is_dir():
        return result
    for path in objects.glob("*/*.json"):
        try:
            result.total_bytes += path.stat().st_size
            result.entries += 1
        except OSError:
            continue
    return result


def _entry_status(path: Path) -> str:
    """Classify one entry: ``ok`` | ``stale`` (old version) | ``corrupt``."""
    try:
        payload = json.loads(path.read_text())
        if (payload.get("version") != CACHE_VERSION
                or payload.get("salt") != _salt()):
            return "stale"
        metrics_from_dict(payload["metrics"])
        return "ok"
    except (OSError, ValueError, TypeError, KeyError, AttributeError):
        return "corrupt"


@dataclass
class CacheVerifyReport:
    """Result of a full cache scan (``repro cache verify``)."""

    directory: Path
    scanned: int = 0
    ok: int = 0
    corrupt: int = 0
    stale: int = 0
    tmp_orphans: int = 0        # leaked writer temp files (crashed stores)
    tmp_removed: int = 0        # ... removed by --prune
    quarantine_entries: int = 0  # files sitting in <cache>/quarantine
    quarantined: "list[Path]" = dataclasses.field(default_factory=list)

    @property
    def findings(self) -> int:
        """Problems a --prune pass would act on."""
        return self.corrupt + self.stale + self.tmp_orphans

    def describe(self) -> str:
        lines = [f"cache dir : {self.directory}",
                 f"scanned   : {self.scanned}",
                 f"ok        : {self.ok}",
                 f"corrupt   : {self.corrupt}",
                 f"stale     : {self.stale}",
                 f"tmp files : {self.tmp_orphans} orphaned"
                 + (f" ({self.tmp_removed} removed)"
                    if self.tmp_removed else ""),
                 f"quarantine: {self.quarantine_entries} entries"]
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)} entries "
                         f"to {quarantine_dir()}")
        elif self.corrupt or self.stale or self.tmp_orphans:
            lines.append("re-run with --prune to clean them up")
        return "\n".join(lines)


#: A writer temp file older than this is an orphan from a crashed
#: store, not a live in-flight publish, and is safe to sweep.
TMP_ORPHAN_AGE_S = 60.0


def iter_tmp_orphans(objects: Path,
                     min_age_s: float = TMP_ORPHAN_AGE_S) -> "list[Path]":
    """Leaked ``*.tmp`` files under an objects tree, oldest-first.

    Only files older than *min_age_s* are reported so a concurrent
    writer's still-open temp file is never mistaken for a leak.
    """
    orphans = []
    now = time.time()
    for path in sorted(objects.glob("*/*.tmp")):
        try:
            if now - path.stat().st_mtime >= min_age_s:
                orphans.append(path)
        except OSError:
            continue
    return orphans


def count_quarantine(directory: Path) -> int:
    """Number of files held in a quarantine directory."""
    if not directory.is_dir():
        return 0
    return sum(1 for path in directory.iterdir() if path.is_file())


def verify(prune: bool = False,
           tmp_age_s: float = TMP_ORPHAN_AGE_S) -> CacheVerifyReport:
    """Scan every cache entry, classifying it as ok/stale/corrupt.

    Also reports orphaned writer temp files (leaked by crashed stores)
    and the size of the quarantine.  With ``prune=True``, corrupt and
    stale entries are moved to the quarantine directory (not deleted)
    so they stop serving lookups but remain available for inspection,
    and orphaned temp files — which never held publishable data — are
    unlinked outright.
    """
    report = CacheVerifyReport(directory=cache_dir())
    objects = cache_dir() / "objects"
    report.quarantine_entries = count_quarantine(quarantine_dir())
    if not objects.is_dir():
        return report
    for path in sorted(objects.glob("*/*.json")):
        report.scanned += 1
        status = _entry_status(path)
        if status == "ok":
            report.ok += 1
            continue
        if status == "stale":
            report.stale += 1
        else:
            report.corrupt += 1
        if prune:
            dest = _quarantine(path)
            if dest is not None:
                report.quarantined.append(dest)
    for path in iter_tmp_orphans(objects, tmp_age_s):
        report.tmp_orphans += 1
        if prune:
            try:
                path.unlink()
                report.tmp_removed += 1
            except OSError:
                continue
    return report


def clear() -> int:
    """Delete every cache entry; returns the number removed."""
    objects = cache_dir() / "objects"
    removed = 0
    if not objects.is_dir():
        return removed
    for path in objects.glob("*/*"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    for sub in objects.glob("*"):
        try:
            sub.rmdir()
        except OSError:
            continue
    return removed
