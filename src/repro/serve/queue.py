"""Job table and bounded admission queue of the serving daemon.

A *job* is one unique simulation fingerprint in flight: its id is the
first 16 hex digits of the run's content address in the disk cache, so
the same submission — from any client, any time, even across a daemon
restart — always maps to the same job id.  Duplicate submissions of a
queued/running fingerprint coalesce onto the existing job instead of
scheduling a second simulation (the in-flight analogue of the engine's
batch dedupe).

The pending queue is bounded (``REPRO_QUEUE_MAX``); when it is full the
admission layer answers 429 with a ``Retry-After`` estimated from the
current backlog and the observed miss service time.  All mutation
happens on the daemon's event-loop thread — no locks.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set

from repro.sim.runner import RunRequest

QUEUED = "queued"
RUNNING = "running"
DONE = "done"

#: Admission verdicts returned by :meth:`AdmissionQueue.admit`.
ADMIT_QUEUED = "queued"
ADMIT_COALESCED = "coalesced"
ADMIT_QUEUE_FULL = "queue_full"

#: Latency ring-buffer size per traffic class.
_MAX_SAMPLES = 65536


@dataclass
class Job:
    """One unique fingerprint moving through the daemon."""

    job_id: str
    digest: str
    request: RunRequest
    key: tuple
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    submissions: int = 1
    #: Clients holding a quota slot on this job (released on completion).
    clients: Set[str] = field(default_factory=set)
    #: Terminal payload: status ok/failed/timeout (+ metrics/failure).
    result: Optional[dict] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.state == DONE

    def describe(self) -> dict:
        info = {
            "job_id": self.job_id,
            "state": self.state,
            "workload": str(getattr(self.request.workload, "name",
                                    self.request.workload)),
            "prefetcher": self.request.prefetcher,
            "variant": self.request.variant,
            "n_accesses": self.request.n_accesses,
            "submissions": self.submissions,
        }
        if self.terminal and self.result is not None:
            info["result"] = self.result
        return info


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample list (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


class AdmissionQueue:
    """Bounded FIFO of jobs awaiting the engine, plus the job table."""

    def __init__(self, max_depth: int):
        self.max_depth = max(1, int(max_depth))
        self.pending: Deque[Job] = deque()
        self.jobs: Dict[str, Job] = {}
        self.counters = {
            "submitted": 0,          # admission attempts (hits included)
            "cache_hits": 0,
            "coalesced": 0,
            "queued": 0,
            "rejected_queue_full": 0,
            "rejected_quota": 0,
            "rejected_draining": 0,  # 503s sent while shutting down
            "completed_ok": 0,
            "completed_failed": 0,
            "completed_timeout": 0,
        }
        self.latencies: Dict[str, List[float]] = {"hit": [], "miss": []}

    # -- admission -----------------------------------------------------

    def depth(self) -> int:
        return len(self.pending)

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def admit(self, job_id: str, digest: str, request: RunRequest,
              key: tuple) -> tuple:
        """Admit one cache-miss submission; returns (verdict, job).

        ``coalesced``: the fingerprint is already queued or running —
        the caller attaches to that job.  ``queued``: a fresh job was
        appended.  ``queue_full``: the bounded queue rejected it (job
        is None).
        """
        existing = self.jobs.get(job_id)
        if existing is not None and not existing.terminal:
            existing.submissions += 1
            self.counters["coalesced"] += 1
            return ADMIT_COALESCED, existing
        if len(self.pending) >= self.max_depth:
            self.counters["rejected_queue_full"] += 1
            return ADMIT_QUEUE_FULL, None
        job = Job(job_id=job_id, digest=digest, request=request, key=key)
        self.jobs[job_id] = job
        self.pending.append(job)
        self.counters["queued"] += 1
        return ADMIT_QUEUED, job

    def drain(self, limit: Optional[int] = None) -> List[Job]:
        """Pop up to *limit* pending jobs (all of them by default) and
        mark them running — the dispatcher's batch claim."""
        count = len(self.pending) if limit is None else min(
            limit, len(self.pending))
        claimed = []
        for _ in range(count):
            job = self.pending.popleft()
            job.state = RUNNING
            job.started_at = time.monotonic()
            claimed.append(job)
        return claimed

    # -- completion ----------------------------------------------------

    def finish(self, job: Job, result: dict) -> None:
        """Move a job to its terminal state and wake every waiter."""
        job.result = result
        job.state = DONE
        job.finished_at = time.monotonic()
        status = result.get("status", "failed")
        counter = f"completed_{status}"
        self.counters[counter] = self.counters.get(counter, 0) + 1
        self.record_latency("miss", job.finished_at - job.submitted_at)
        job.done.set()

    def record_hit(self, seconds: float) -> None:
        self.counters["cache_hits"] += 1
        self.record_latency("hit", seconds)

    def record_latency(self, traffic_class: str, seconds: float) -> None:
        samples = self.latencies[traffic_class]
        samples.append(seconds)
        if len(samples) > _MAX_SAMPLES:
            del samples[:len(samples) - _MAX_SAMPLES]

    # -- observability -------------------------------------------------

    def avg_miss_service_s(self, default: float = 2.0) -> float:
        samples = self.latencies["miss"]
        return sum(samples) / len(samples) if samples else default

    def retry_after_s(self) -> int:
        """Suggested client backoff when the queue rejects: the backlog
        priced at the observed per-miss service time, clamped sanely."""
        estimate = (len(self.pending) + 1) * self.avg_miss_service_s()
        return int(min(120.0, max(1.0, estimate)))

    def orphaned(self) -> List[Job]:
        """Non-terminal jobs that are neither pending nor running — must
        always be empty; exposed so tests can assert the invariant."""
        tracked = {job.job_id for job in self.pending}
        return [job for job in self.jobs.values()
                if not job.terminal and job.state == QUEUED
                and job.job_id not in tracked]

    def snapshot(self) -> dict:
        requests_seen = self.counters["submitted"]
        hits = self.counters["cache_hits"]
        return {
            "queue_depth": len(self.pending),
            "max_depth": self.max_depth,
            "jobs_tracked": len(self.jobs),
            "running": sum(1 for j in self.jobs.values()
                           if j.state == RUNNING),
            "counters": dict(self.counters),
            "hit_rate": (hits / requests_seen) if requests_seen else 0.0,
            "service_time_s": {
                cls: {
                    "count": len(samples),
                    "p50": round(percentile(samples, 0.50), 6),
                    "p99": round(percentile(samples, 0.99), 6),
                }
                for cls, samples in self.latencies.items()
            },
        }
