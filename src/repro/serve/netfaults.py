"""Deterministic network fault injection for the serving layer.

``repro.sim.iofaults`` wrecks the storage plane; this module gives the
same adversarial treatment to the transport plane between
:class:`~repro.serve.client.ServeClient` and the daemon in
``repro.serve.app``.  It is two things at once:

1. **The socket-seam shim.**  Every client connect/send/recv and every
   daemon accept/respond crosses one of the hooks below
   (:func:`connect`, :func:`send`, :func:`recv`, :func:`accept`,
   :func:`respond`).  When no fault plan is armed each hook is a single
   ``None`` check in front of the real operation — the disabled
   overhead is bench-asserted ≤ 2% (``benchmarks/bench_cluster.py``).
2. **The fault grammar.**  ``REPRO_NET_FAULTS`` — identical in shape to
   ``REPRO_IO_FAULTS`` — describes which transport *operations* fail
   and how::

       spec    := clause (";" clause)*
       clause  := kind target? (":" key "=" value)*
       target  := "@" idx ("+" idx)*     explicit 0-based op indices
                | "~" count "/" seed     seeded sample from a window
       kind    := "refuse" | "reset" | "drop" | "delay" | "garble"
                | "dup-response" | "half-close"

   Examples::

       REPRO_NET_FAULTS="refuse@0:site=client.connect"  # first dial
       REPRO_NET_FAULTS="reset~3/7"                     # 3 seeded RSTs
       REPRO_NET_FAULTS="garble:site=client.recv"       # every read
       REPRO_NET_FAULTS="drop@2:site=daemon;delay:secs=0.005"

   Parameters: ``site=<prefix>`` restricts a clause to one side or op
   (``client``, ``client.send``, ``daemon``, ``daemon.respond``, ...);
   ``secs=<float>`` is the ``delay`` stall (default 0.01); ``of=<int>``
   is the seeded-sample window (default 16 ops per site).

**Sites** are dotted ``<side>.<op>`` names; the op suffix decides
which kinds can fire there:

    ============ ====================================================
    op            kinds that apply
    ============ ====================================================
    connect       refuse, reset, delay            (client dials)
    send          reset, drop, half-close, delay  (client writes)
    recv          reset, drop, garble, delay      (client reads)
    accept        refuse, reset, delay            (daemon accepts)
    respond       reset, drop, garble, dup-response, half-close,
                  delay                           (daemon replies)
    ============ ====================================================

**Deterministic sequencing**: each site keeps a per-process operation
counter; clause targets index into that sequence, so a replay of the
same workload fires the same faults at the same operations.  Hard
kinds raise :class:`InjectedNetError` (an ``OSError`` with a real
``errno``) or :class:`InjectedNetTimeout` (a ``socket.timeout``) so
every caller's existing transport-retry path is exercised; the soft
kinds mutate the payload instead — ``garble`` NUL-smashes a span of
the bytes (guaranteed to break JSON parsing, never to produce a
plausible-but-wrong payload), ``dup-response`` and ``half-close`` on
the daemon side are returned as *actions* for the response writer to
apply (send twice / send the head then sever mid-body).

``drop`` models a blackholed segment.  Literally waiting out the peer
timeout would make chaos runs crawl, so the hook raises an
:class:`InjectedNetTimeout` immediately — same exception type, same
recovery path, no wall-clock tax.

The plan is armed lazily from the environment on the first hook call
(so daemon subprocesses inherit it), or explicitly via :func:`arm`/
:func:`disarm` in tests.  A malformed spec raises
:class:`NetFaultSpecError`, a :class:`ConfigurationError` — an
operator mistake, not a simulation failure.
"""

from __future__ import annotations

import errno
import os
import random
import socket
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.config import ConfigurationError

ENV_VAR = "REPRO_NET_FAULTS"

KINDS = ("refuse", "reset", "drop", "delay", "garble", "dup-response",
         "half-close")

#: Which fault kinds can fire at which op suffix (see module docstring).
_OPS_FOR_KIND = {
    "refuse": ("connect", "accept"),
    "reset": ("connect", "send", "recv", "accept", "respond"),
    "drop": ("send", "recv", "respond"),
    "delay": ("connect", "send", "recv", "accept", "respond"),
    "garble": ("recv", "respond"),
    "dup-response": ("respond",),
    "half-close": ("send", "respond"),
}

#: Default window for seeded "~count/seed" sampling (ops per site).
DEFAULT_WINDOW = 16


class NetFaultSpecError(ConfigurationError):
    """A ``REPRO_NET_FAULTS`` spec failed to parse."""


class InjectedNetError(OSError):
    """An injected transport failure (carries a real errno)."""


class InjectedNetTimeout(socket.timeout):
    """An injected blackhole: the segment never arrives."""


@dataclass(frozen=True)
class NetFaultClause:
    """One parsed spec clause: kind, site filter, and op targets."""

    kind: str
    site: str = ""                              # dotted prefix filter
    indices: Optional[Tuple[int, ...]] = None   # explicit "@" targets
    count: int = 0                              # seeded "~" sample size
    seed: int = 0
    window: int = DEFAULT_WINDOW
    secs: float = 0.01                          # delay stall duration

    def matches_site(self, site: str) -> bool:
        if not self.site:
            return True
        return site == self.site or site.startswith(self.site + ".")

    def fires(self, site: str, index: int) -> bool:
        """Does this clause fire for op *index* of *site*?"""
        if site.rsplit(".", 1)[-1] not in _OPS_FOR_KIND[self.kind]:
            return False
        if not self.matches_site(site):
            return False
        if self.indices is not None:
            return index in self.indices
        if self.count:
            if index >= self.window:
                return False
            # Seed mixed with the site so two sites fail at different
            # offsets, deterministically across processes and replays.
            rng = random.Random(self.seed ^ zlib.crc32(site.encode()))
            return index in rng.sample(range(self.window),
                                       min(self.count, self.window))
        return True                              # bare kind: every op


def _parse_clause(clause: str) -> NetFaultClause:
    head, *raw_params = clause.split(":")
    params: Dict[str, object] = {}
    for item in raw_params:
        key, sep, value = item.partition("=")
        if not sep or not value:
            raise NetFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: malformed parameter "
                f"{item!r}")
        try:
            if key == "site":
                params["site"] = value
            elif key == "secs":
                params["secs"] = float(value)
            elif key == "of":
                params["window"] = int(value)
                if params["window"] <= 0:
                    raise NetFaultSpecError(
                        f"{ENV_VAR} clause {clause!r}: of= must be > 0")
            else:
                raise NetFaultSpecError(
                    f"{ENV_VAR} clause {clause!r}: unknown parameter "
                    f"{key!r} (expected site=, secs= or of=)")
        except ValueError:
            raise NetFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: bad value for "
                f"{key!r}: {value!r}") from None

    explicit = "@" in head
    seeded = "~" in head
    if explicit and seeded:
        raise NetFaultSpecError(
            f"{ENV_VAR} clause {clause!r}: use @idx or ~count/seed, "
            f"not both")
    if explicit:
        kind, _, target = head.partition("@")
        try:
            indices = tuple(int(part) for part in target.split("+"))
        except ValueError:
            raise NetFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: bad op index in "
                f"{target!r}") from None
        if any(i < 0 for i in indices):
            raise NetFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: negative op index")
        params["indices"] = indices
    elif seeded:
        kind, _, target = head.partition("~")
        count_str, sep, seed_str = target.partition("/")
        if not sep or not count_str or not seed_str:
            raise NetFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: seeded target must be "
                f"count/seed")
        try:
            params["count"], params["seed"] = int(count_str), int(seed_str)
        except ValueError:
            raise NetFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: bad count/seed "
                f"{target!r}") from None
        if params["count"] < 0:
            raise NetFaultSpecError(
                f"{ENV_VAR} clause {clause!r}: negative count")
    else:
        kind = head
    if kind not in KINDS:
        raise NetFaultSpecError(
            f"{ENV_VAR} clause {clause!r}: unknown kind {kind!r} "
            f"(expected one of {', '.join(KINDS)})")
    return NetFaultClause(kind=kind, **params)


def parse(spec: str) -> List[NetFaultClause]:
    """Parse a fault spec string (raises :class:`NetFaultSpecError`)."""
    clauses = []
    for part in spec.split(";"):
        part = part.strip()
        if part:
            clauses.append(_parse_clause(part))
    return clauses


def plan_from_env() -> Optional[List[NetFaultClause]]:
    """The clauses armed via ``REPRO_NET_FAULTS``, or None when unset."""
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return parse(spec)


# ----------------------------------------------------------------------
# Arming
# ----------------------------------------------------------------------

_UNINITIALIZED = object()

#: The armed plan: _UNINITIALIZED until the first hook call (then read
#: once from the environment), None when disabled, else clause list.
_PLAN = _UNINITIALIZED

#: Per-site operation counters (deterministic sequencing).
_COUNTERS: Dict[str, int] = {}


def arm(spec: str) -> List[NetFaultClause]:
    """Arm a fault plan for this process (tests; resets sequencing)."""
    global _PLAN
    _PLAN = parse(spec)
    _COUNTERS.clear()
    return _PLAN


def disarm() -> None:
    """Disable injection and forget the cached environment read."""
    global _PLAN
    _PLAN = _UNINITIALIZED
    _COUNTERS.clear()


def reset_counters() -> None:
    """Zero the per-site op counters (test isolation helper)."""
    _COUNTERS.clear()


def _plan() -> Optional[List[NetFaultClause]]:
    global _PLAN
    if _PLAN is _UNINITIALIZED:
        _PLAN = plan_from_env()
        _COUNTERS.clear()
    return _PLAN


def _actions(site: str) -> List[NetFaultClause]:
    """Advance *site*'s op counter; return the clauses firing on it."""
    plan = _plan()
    if plan is None:
        return ()
    index = _COUNTERS.get(site, 0)
    _COUNTERS[site] = index + 1
    return [clause for clause in plan if clause.fires(site, index)]


def _raise_for(site: str, fired: List[NetFaultClause]) -> None:
    """Apply delay and the hard error kinds common to every op."""
    for clause in fired:
        if clause.kind == "delay":
            time.sleep(clause.secs)
        elif clause.kind == "refuse":
            raise InjectedNetError(
                errno.ECONNREFUSED, f"injected ECONNREFUSED at {site}")
        elif clause.kind == "reset":
            raise InjectedNetError(
                errno.ECONNRESET, f"injected ECONNRESET at {site}")
        elif clause.kind == "drop":
            raise InjectedNetTimeout(f"injected blackhole at {site}")


def _garble(data: bytes) -> bytes:
    """NUL-smash a span of *data*, keeping its length.

    NUL bytes are invalid anywhere in a JSON document and in an HTTP
    status line, so a garbled payload always fails parsing — it can
    never decode into a plausible-but-wrong result, which is what keeps
    the never-bitwise-wrong chaos invariant checkable.
    """
    if not data:
        return data
    span = max(1, len(data) // 4)
    start = len(data) // 2
    return data[:start] + b"\x00" * min(span, len(data) - start) \
        + data[start + span:]


# ----------------------------------------------------------------------
# The socket-seam shim
# ----------------------------------------------------------------------

def connect(site: str) -> None:
    """Client dial fault point (refuse/reset/delay)."""
    if _PLAN is None:
        return
    _raise_for(site, _actions(site))


def send(site: str) -> None:
    """Client request-write fault point (reset/drop/half-close/delay).

    ``half-close`` on the send side means the request never fully
    reached the peer before our FIN — indistinguishable from a reset
    for the caller, so it raises EPIPE.
    """
    if _PLAN is None:
        return
    fired = _actions(site)
    _raise_for(site, fired)
    if any(clause.kind == "half-close" for clause in fired):
        raise InjectedNetError(
            errno.EPIPE, f"injected EPIPE at {site}")


def recv(site: str, data: bytes) -> bytes:
    """Client response-read fault point (reset/drop/garble/delay).

    ``garble`` corrupts the received bytes in place of raising — the
    caller's parse-and-validate path must catch it.
    """
    if _PLAN is None:
        return data
    fired = _actions(site)
    _raise_for(site, fired)
    if any(clause.kind == "garble" for clause in fired):
        return _garble(data)
    return data


def accept(site: str) -> str:
    """Daemon accept fault point; returns ``"ok"`` or ``"close"``.

    The daemon side cannot raise into the kernel's accept queue, so
    refuse/reset are modeled as an immediate unceremonious close of the
    just-accepted connection — the client observes a refused/reset
    dial, which is the same wire-visible outcome.
    """
    if _PLAN is None:
        return "ok"
    fired = _actions(site)
    for clause in fired:
        if clause.kind == "delay":
            time.sleep(clause.secs)
    if any(clause.kind in ("refuse", "reset") for clause in fired):
        return "close"
    return "ok"


def respond(site: str, body: bytes) -> Tuple[bytes, str]:
    """Daemon response-write fault point; returns ``(body, action)``.

    Actions for the response writer: ``"ok"`` write normally;
    ``"drop"`` write nothing and sever (blackholed reply); ``"reset"``
    abort the transport (RST); ``"half-close"`` write the head and half
    the body then sever; ``"dup"`` write the full response twice (a
    retransmit bug — the keep-alive parser must not read the duplicate
    as the answer to the *next* request).  ``garble`` corrupts the body
    bytes and composes with action ``"ok"``.
    """
    if _PLAN is None:
        return body, "ok"
    fired = _actions(site)
    for clause in fired:
        if clause.kind == "delay":
            time.sleep(clause.secs)
    if any(clause.kind == "garble" for clause in fired):
        body = _garble(body)
    for kind, action in (("drop", "drop"), ("reset", "reset"),
                         ("half-close", "half-close"),
                         ("dup-response", "dup")):
        if any(clause.kind == kind for clause in fired):
            return body, action
    return body, "ok"
