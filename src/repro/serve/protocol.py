"""Wire protocol of the serving layer: JSON bodies -> validated requests.

The daemon accepts the same parameter surface the campaign grid does: a
flat JSON object with :data:`~repro.campaign.grid.REQUEST_AXES` fields
(``workload``, ``prefetcher``, ``variant``, ...) plus an optional
``config`` mapping of dotted :class:`~repro.sim.config.SystemConfig`
paths (``llc.size_bytes``, ``dram.transfer_rate_mts``) to scalar
overrides — so a campaign cell's ``params`` dict round-trips through
``/submit`` unchanged.

Validation happens entirely at admission, before anything reaches the
engine: an unknown workload/prefetcher/variant, a malformed override
path, or an out-of-range scalar raises :class:`ProtocolError` (HTTP
400), never a permanent in-worker failure that would burn an engine
slot on a request that could not possibly succeed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.campaign.grid import CampaignSpecError, _apply_override
from repro.core.factory import PREFETCHERS, VARIANTS
from repro.sim.config import SystemConfig
from repro.sim.runner import RunRequest
from repro.sim.simulator import L1D_PREFETCHERS


class ProtocolError(ValueError):
    """A submission body is malformed; maps to an HTTP 4xx response."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


#: Fields a submission object may carry (all optional but ``workload``).
REQUEST_FIELDS = ("workload", "prefetcher", "variant", "l1d",
                  "oracle_page_size", "n_accesses", "table_scale",
                  "gb_fraction", "config")

_WORKLOADS: Optional[frozenset] = None


def known_workloads() -> frozenset:
    """Workload names the daemon admits (catalog build memoised)."""
    global _WORKLOADS
    if _WORKLOADS is None:
        from repro.workloads.suites import catalog
        _WORKLOADS = frozenset(catalog(include_non_intensive=True))
    return _WORKLOADS


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def _check_choice(name: str, value, choices) -> None:
    _require(isinstance(value, str),
             f"{name!r} must be a string, got {type(value).__name__}")
    if value not in choices:
        raise ProtocolError(
            f"unknown {name} {value!r} (choose from "
            f"{sorted(choices)})")


def _check_number(name: str, value, minimum=None, maximum=None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"{name!r} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise ProtocolError(f"{name!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ProtocolError(f"{name!r} must be <= {maximum}, got {value}")
    return value


def parse_run_request(data) -> RunRequest:
    """Validate one submission object into a :class:`RunRequest`.

    Every field is checked against the same registries the CLI uses
    (workload catalog, prefetcher/variant/l1d tables, dotted config
    paths through the campaign grid's override machinery); the returned
    request is ``resolved()`` so its fingerprint is immediately usable
    as the job identity.
    """
    _require(isinstance(data, dict),
             f"submission must be a JSON object, got "
             f"{type(data).__name__}")
    unknown = sorted(set(data) - set(REQUEST_FIELDS))
    _require(not unknown,
             f"unknown field(s) {unknown} (expected a subset of "
             f"{list(REQUEST_FIELDS)})")
    _require("workload" in data, "submission needs a 'workload' field")

    workload = data["workload"]
    _check_choice("workload", workload, known_workloads())
    prefetcher = data.get("prefetcher", "spp")
    _check_choice("prefetcher", prefetcher, PREFETCHERS)
    variant = data.get("variant", "psa")
    _check_choice("variant", variant, VARIANTS)
    l1d = data.get("l1d", "none")
    _check_choice("l1d", l1d, L1D_PREFETCHERS)

    oracle = data.get("oracle_page_size", False)
    _require(isinstance(oracle, bool), "'oracle_page_size' must be a bool")

    n_accesses = data.get("n_accesses")
    if n_accesses is not None:
        _require(isinstance(n_accesses, int)
                 and not isinstance(n_accesses, bool)
                 and n_accesses >= 1,
                 f"'n_accesses' must be a positive integer, "
                 f"got {n_accesses!r}")

    table_scale = _check_number(
        "table_scale", data.get("table_scale", 1.0), minimum=0.0)
    _require(table_scale > 0, "'table_scale' must be > 0")
    gb_fraction = _check_number(
        "gb_fraction", data.get("gb_fraction", 0.0),
        minimum=0.0, maximum=1.0)

    config = SystemConfig()
    overrides = data.get("config", {})
    _require(isinstance(overrides, dict),
             "'config' must be an object of dotted-path overrides")
    for path, value in sorted(overrides.items()):
        try:
            _apply_override(config, path, value)
        except CampaignSpecError as exc:
            raise ProtocolError(str(exc)) from exc
    if overrides:
        try:
            config.validate()
        except ValueError as exc:
            raise ProtocolError(f"invalid configuration: {exc}") from exc

    return RunRequest(
        workload, prefetcher, variant, l1d=l1d, oracle_page_size=oracle,
        n_accesses=n_accesses, table_scale=float(table_scale),
        gb_fraction=float(gb_fraction), config=config).resolved()


def request_digest(data) -> str:
    """The content address a daemon would assign this submission.

    Validates *data* exactly like admission does and hashes the
    resolved run key — the same digest that names the job id, the
    cache entry, and (for the cluster client) the rendezvous placement
    of the request, so client-side routing and server-side coalescing
    agree by construction.
    """
    from repro.sim import cache as disk_cache

    return disk_cache.key_digest(parse_run_request(data).key())


def parse_submission(body) -> Dict[str, list]:
    """Parse a ``/batch`` body: ``{"requests": [...]}`` of objects."""
    _require(isinstance(body, dict) and isinstance(
        body.get("requests"), list),
        "batch submission must be {'requests': [...]}")
    requests = body["requests"]
    _require(len(requests) >= 1, "'requests' must not be empty")
    return {"requests": requests}
