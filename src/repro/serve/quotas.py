"""Per-client admission quotas for the serving daemon.

A client (the ``X-Client-Id`` header, falling back to the peer address)
may hold at most ``REPRO_CLIENT_QUOTA`` jobs in flight — queued or
running — at once; the slot is released when the job reaches a terminal
state.  Cache hits never consume a slot (they are answered inline
without touching the engine), and a client coalescing onto a job it
already holds is idempotent.

All state is mutated only from the daemon's event-loop thread, so no
locking is needed.
"""

from __future__ import annotations

from typing import Dict


class ClientQuotas:
    """In-flight job slots per client identity."""

    def __init__(self, limit: int):
        #: 0 disables quota enforcement entirely.
        self.limit = max(0, int(limit))
        self._in_flight: Dict[str, int] = {}

    def in_flight(self, client: str) -> int:
        return self._in_flight.get(client, 0)

    def try_acquire(self, client: str) -> bool:
        """Take one slot for *client*; False when the quota is exhausted."""
        held = self._in_flight.get(client, 0)
        if self.limit and held >= self.limit:
            return False
        self._in_flight[client] = held + 1
        return True

    def release(self, client: str) -> None:
        held = self._in_flight.get(client, 0)
        if held <= 1:
            self._in_flight.pop(client, None)
        else:
            self._in_flight[client] = held - 1

    def total_in_flight(self) -> int:
        return sum(self._in_flight.values())

    def snapshot(self) -> Dict[str, int]:
        return dict(self._in_flight)
