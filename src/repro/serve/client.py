"""Stdlib HTTP client for the ``repro serve`` daemon.

Built on ``http.client`` (which transparently decodes the daemon's
chunked progress streams), one connection per call, so it works from
tests, benchmarks, scripts and other hosts without any dependency.

Every method returns a :class:`Response` carrying the raw HTTP status
and the parsed JSON body — tests assert on status codes directly
(200 hit, 202 queued, 400 bad request, 404 unknown job, 429
backpressure/quota).
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class ServeClientError(RuntimeError):
    """The daemon could not be reached or answered garbage."""


@dataclass
class Response:
    """One daemon reply: HTTP status + parsed JSON body (+ headers)."""

    status: int
    body: dict
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after_s(self) -> Optional[int]:
        raw = self.headers.get("retry-after")
        return int(raw) if raw is not None else None


class ServeClient:
    """Talks to one daemon; ``client_id`` scopes the server-side quota."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 client_id: Optional[str] = None, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json",
                   "Connection": "close"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        return headers

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Response:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            conn.request(method, path, body=body, headers=self._headers())
            raw = conn.getresponse()
            data = raw.read()
            headers = {k.lower(): v for k, v in raw.getheaders()}
            try:
                parsed = json.loads(data.decode()) if data else {}
            except ValueError as exc:
                raise ServeClientError(
                    f"{method} {path}: non-JSON body "
                    f"({data[:120]!r})") from exc
            return Response(status=raw.status, body=parsed,
                            headers=headers)
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"{method} {path} against "
                f"{self.host}:{self.port} failed: {exc}") from exc
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Response:
        return self._request("GET", "/healthz")

    def metrics(self) -> Response:
        return self._request("GET", "/metrics")

    def submit(self, request: dict) -> Response:
        """Submit one run request object (see ``serve.protocol``)."""
        return self._request("POST", "/submit", request)

    def submit_batch(self, requests: List[dict]) -> Response:
        return self._request("POST", "/batch", {"requests": requests})

    def job(self, job_id: str, wait: float = 0.0) -> Response:
        path = f"/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def progress(self, job_id: str, detail: bool = False) -> Response:
        path = f"/jobs/{job_id}/progress"
        if detail:
            path += "?detail=1"
        return self._request("GET", path)

    def progress_stream(self, job_id: str, interval: float = 0.25,
                        detail: bool = False) -> Iterator[dict]:
        """Yield progress events from the chunked stream until the job
        reaches a terminal state (the last yielded event carries it)."""
        path = (f"/jobs/{job_id}/progress?stream=1"
                f"&interval={interval:g}")
        if detail:
            path += "&detail=1"
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", path, headers=self._headers())
            raw = conn.getresponse()
            if raw.status != 200:
                body = raw.read()
                raise ServeClientError(
                    f"progress stream for {job_id}: HTTP {raw.status} "
                    f"({body[:120]!r})")
            while True:
                line = raw.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"progress stream for {job_id} failed: {exc}") from exc
        finally:
            conn.close()

    # -- conveniences --------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_wait: float = 10.0) -> Response:
        """Long-poll until the job is terminal (or *timeout* expires)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"job {job_id} still not terminal after {timeout}s")
            response = self.job(job_id,
                                wait=min(poll_wait, max(0.1, remaining)))
            if response.status != 200:
                return response
            if response.body.get("state") == "done":
                return response

    def submit_and_wait(self, request: dict,
                        timeout: float = 300.0) -> Response:
        """Submit; an inline cache hit returns immediately, a queued
        miss is waited on and the terminal job status returned."""
        response = self.submit(request)
        if response.status != 202:
            return response
        return self.wait(response.body["job_id"], timeout=timeout)
