"""Stdlib HTTP client for the ``repro serve`` daemon.

Built on ``http.client`` (which transparently decodes the daemon's
chunked progress streams), one connection per call, so it works from
tests, benchmarks, scripts and other hosts without any dependency.

Every method returns a :class:`Response` carrying the raw HTTP status
and the parsed JSON body — tests assert on status codes directly
(200 hit, 202 queued, 400 bad request, 404 unknown job, 429
backpressure/quota).

**Resilience.**  Transport failures (connection refused mid-restart,
reset sockets, a garbled reply that fails to parse) are retried with
exponentially backed-off, deterministic jitter under a bounded budget
(:class:`RetryPolicy`, ``REPRO_CLIENT_RETRIES`` /
``REPRO_CLIENT_BACKOFF``), behind a simple open/half-open circuit
breaker so a dead daemon fails fast instead of saturating its listen
queue.  Protocol-level responses are *never* retried at this layer —
a 429 is returned to the caller verbatim — but
:meth:`ServeClient.submit_and_wait` honours 429/503 ``Retry-After``
and survives daemon restarts: a job id the new daemon has never heard
of (404 ``unknown_job``) is resubmitted, and completed work re-serves
as a cache hit.

Every client-side socket operation crosses the ``repro.serve.netfaults``
shim, so ``REPRO_NET_FAULTS`` can deterministically refuse dials,
reset sends, and garble reads to prove all of the above recovery paths
actually fire.
"""

from __future__ import annotations

import http.client
import json
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.serve import netfaults
from repro.sim.config import env_float, env_int


class ServeClientError(RuntimeError):
    """The daemon could not be reached or answered garbage."""


class GarbledResponseError(http.client.HTTPException):
    """A reply that failed to parse as JSON.

    Subclasses ``HTTPException`` so the transport retry loop treats a
    corrupted-in-flight response exactly like a reset socket: every
    request is idempotent by content-addressing, so re-asking is always
    safe and usually succeeds.
    """


def client_retries() -> int:
    """Transport retry budget per request (``REPRO_CLIENT_RETRIES``)."""
    return env_int("REPRO_CLIENT_RETRIES", 4, minimum=0)


def client_backoff() -> float:
    """Base backoff seconds between transport retries
    (``REPRO_CLIENT_BACKOFF``)."""
    return env_float("REPRO_CLIENT_BACKOFF", 0.1, minimum=0.0)


@dataclass
class RetryPolicy:
    """How hard one client tries before declaring the daemon gone.

    ``retries`` transport attempts are added after the first failure,
    spaced ``backoff_s * 2**attempt`` apart (capped at
    ``max_backoff_s``) plus a deterministic crc32 jitter so N clients
    restarted together do not reconnect in lockstep.  After
    ``breaker_threshold`` *consecutive* transport failures the breaker
    opens: calls fail immediately for ``breaker_cooldown_s``, then one
    half-open probe is let through — success closes the breaker,
    failure re-opens it.
    """

    retries: int = field(default_factory=client_retries)
    backoff_s: float = field(default_factory=client_backoff)
    max_backoff_s: float = 5.0
    breaker_threshold: int = 8
    breaker_cooldown_s: float = 1.0

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before retry *attempt* (0-based), with jitter."""
        jitter = zlib.crc32(f"{token}:{attempt}".encode()) % 1024 / 1024
        base = min(self.backoff_s * (2 ** attempt), self.max_backoff_s)
        return base * (1.0 + jitter)


class CircuitBreaker:
    """Consecutive-failure breaker: closed -> open -> half-open."""

    def __init__(self, threshold: int, cooldown_s: float):
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if time.monotonic() - self.opened_at >= self.cooldown_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request go out right now?  (half-open admits one probe)"""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._probing = False
        if self.failures >= self.threshold:
            self.opened_at = time.monotonic()


@dataclass
class Response:
    """One daemon reply: HTTP status + parsed JSON body (+ headers)."""

    status: int
    body: dict
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after_s(self) -> Optional[int]:
        raw = self.headers.get("retry-after")
        return int(raw) if raw is not None else None

    @property
    def result(self) -> Optional[dict]:
        """The run-result payload, normalised across reply shapes.

        An inline cache hit (200) carries the result at the top level;
        a terminal job body (200 on ``/jobs/<id>``) nests it under
        ``"result"``.  Returns None when no result is present (202
        queued, 4xx, non-terminal job states).
        """
        nested = self.body.get("result")
        if isinstance(nested, dict) and "status" in nested:
            return nested
        if self.body.get("status") in ("ok", "failed"):
            return self.body
        return None

    @property
    def run_status(self) -> Optional[str]:
        """``"ok"``/``"failed"`` from the run result, or None."""
        result = self.result
        return result.get("status") if result else None

    @property
    def failure(self) -> Optional[dict]:
        """The structured ``RunFailure`` body of a failed run.

        Lets callers distinguish ``source="shutdown"`` (the daemon
        failed the queued job on its way down — resubmittable) from a
        real simulation failure, instead of pattern-matching on status
        codes.  None when the run did not fail.
        """
        result = self.result
        if result is not None and result.get("status") == "failed":
            return result.get("failure") or {}
        return None


class ServeClient:
    """Talks to one daemon; ``client_id`` scopes the server-side quota."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 client_id: Optional[str] = None, timeout: float = 60.0,
                 policy: Optional[RetryPolicy] = None):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = CircuitBreaker(self.policy.breaker_threshold,
                                      self.policy.breaker_cooldown_s)
        self.transport_retries = 0   # observability: retries performed

    # -- plumbing ------------------------------------------------------

    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json",
                   "Connection": "close"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        return headers

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None) -> Response:
        netfaults.connect("client.connect")
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            netfaults.send("client.send")
            conn.request(method, path, body=body, headers=self._headers())
            raw = conn.getresponse()
            data = netfaults.recv("client.recv", raw.read())
            headers = {k.lower(): v for k, v in raw.getheaders()}
            try:
                parsed = json.loads(data.decode()) if data else {}
            except ValueError as exc:
                raise GarbledResponseError(
                    f"{method} {path}: non-JSON body "
                    f"({data[:120]!r})") from exc
            return Response(status=raw.status, body=parsed,
                            headers=headers)
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Response:
        """One request with transport-level retries.

        Connection failures (refused/reset/timeout — the daemon
        restarting underneath us) and garbled replies
        (:class:`GarbledResponseError` — corrupted in flight, safe to
        re-ask because requests are idempotent by content-addressing)
        are retried; any parseable HTTP response, including 4xx/5xx,
        is returned to the caller untouched.
        """
        attempt = 0
        while True:
            if not self.breaker.allow():
                raise ServeClientError(
                    f"{method} {path} against {self.host}:{self.port}: "
                    f"circuit open after "
                    f"{self.breaker.failures} consecutive transport "
                    f"failures (cooling down)")
            try:
                response = self._request_once(method, path, payload)
                self.breaker.record_success()
                return response
            except ServeClientError:
                raise                       # protocol error: no retry
            except (OSError, http.client.HTTPException) as exc:
                self.breaker.record_failure()
                if attempt >= self.policy.retries:
                    raise ServeClientError(
                        f"{method} {path} against "
                        f"{self.host}:{self.port} failed after "
                        f"{attempt + 1} attempt(s): {exc}") from exc
                time.sleep(self.policy.delay_s(attempt, token=path))
                self.transport_retries += 1
                attempt += 1

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Response:
        return self._request("GET", "/healthz")

    def metrics(self) -> Response:
        return self._request("GET", "/metrics")

    def submit(self, request: dict) -> Response:
        """Submit one run request object (see ``serve.protocol``)."""
        return self._request("POST", "/submit", request)

    def submit_batch(self, requests: List[dict]) -> Response:
        return self._request("POST", "/batch", {"requests": requests})

    def job(self, job_id: str, wait: float = 0.0) -> Response:
        path = f"/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return self._request("GET", path)

    def progress(self, job_id: str, detail: bool = False) -> Response:
        path = f"/jobs/{job_id}/progress"
        if detail:
            path += "?detail=1"
        return self._request("GET", path)

    def progress_stream(self, job_id: str, interval: float = 0.25,
                        detail: bool = False) -> Iterator[dict]:
        """Yield progress events from the chunked stream until the job
        reaches a terminal state (the last yielded event carries it)."""
        path = (f"/jobs/{job_id}/progress?stream=1"
                f"&interval={interval:g}")
        if detail:
            path += "&detail=1"
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", path, headers=self._headers())
            raw = conn.getresponse()
            if raw.status != 200:
                body = raw.read()
                raise ServeClientError(
                    f"progress stream for {job_id}: HTTP {raw.status} "
                    f"({body[:120]!r})")
            while True:
                line = raw.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"progress stream for {job_id} failed: {exc}") from exc
        finally:
            conn.close()

    # -- conveniences --------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_wait: float = 10.0) -> Response:
        """Long-poll until the job is terminal (or *timeout* expires)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"job {job_id} still not terminal after {timeout}s")
            response = self.job(job_id,
                                wait=min(poll_wait, max(0.1, remaining)))
            if response.status != 200:
                return response
            if response.body.get("state") == "done":
                return response

    def submit_and_wait(self, request: dict,
                        timeout: float = 300.0) -> Response:
        """Submit; an inline cache hit returns immediately, a queued
        miss is waited on and the terminal job status returned.

        Survives the daemon's whole failure protocol within *timeout*:

        - **429 backpressure/quota, 503 draining** — sleeps out
          ``Retry-After`` (or a policy backoff) and resubmits.
        - **daemon restart** — a transport failure mid-wait, a 404
          ``unknown_job`` from a daemon that lost its in-memory queue,
          or a job the old daemon failed with ``kind="shutdown"`` on
          its way down, resubmits the same request: completed work
          re-serves as a cache hit, lost work re-queues.

        Anything else (400 bad request, a terminal job state) is
        returned as-is — a permanently-failed run comes back with the
        replica's structured failure body intact, so
        ``response.failure`` tells shutdown casualties apart from real
        simulation failures.  Raises :class:`ServeClientError` only
        when the deadline expires or the transport budget is
        exhausted.
        """
        deadline = time.monotonic() + timeout
        round_no = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"submit_and_wait: no terminal outcome within "
                    f"{timeout}s")
            response = self.submit(request)
            if response.status in (429, 503):
                pause = response.retry_after_s \
                    or self.policy.delay_s(min(round_no, 6), "429")
                time.sleep(min(pause, max(0.0, remaining)))
                round_no += 1
                continue
            if response.status != 202:
                return response
            job_id = response.body["job_id"]
            try:
                waited = self.wait(job_id, timeout=remaining)
            except ServeClientError:
                # Transport died mid-wait (daemon restarting): give it
                # one backoff, then start a fresh round — the cache
                # answers inline if the work finished before the crash.
                if deadline - time.monotonic() <= 0:
                    raise
                time.sleep(min(self.policy.delay_s(min(round_no, 6),
                                                   "restart"),
                               max(0.0, deadline - time.monotonic())))
                round_no += 1
                continue
            if waited.status == 404:
                # The daemon restarted and forgot the job id; resubmit.
                round_no += 1
                continue
            result = waited.body.get("result") or {}
            if (result.get("status") == "failed"
                    and (result.get("failure") or {}).get("kind")
                    == "shutdown"):
                # The daemon failed the queued job while shutting down
                # — not a simulation failure.  Resubmit: finished work
                # re-serves as a cache hit, lost work re-queues.
                round_no += 1
                continue
            return waited
