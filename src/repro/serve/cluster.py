"""Multi-daemon clustering over the shared content-addressed cache.

The HA design leans on what the repo already has instead of new
consensus machinery — exactly the Victima move of exploiting existing
underutilized capacity.  Every replica writes finished runs to the
*same* content-addressed disk cache, and every entry is bitwise-
reproducible from its key, so **any replica can serve any finished
result identically**.  What is left to coordinate is tiny:

* **Membership** — each daemon publishes a heartbeat-renewed member
  record under ``<cache>/cluster/members/<id>.json``, written with the
  same crash-consistent temp-fsync-rename publish as every other
  durable file (``iofaults.publish_bytes``, layer ``member`` — so the
  registry is wreckable by ``REPRO_IO_FAULTS`` and healable by
  ``repro doctor``).  Staleness is judged by file mtime against
  ``REPRO_MEMBER_TTL`` exactly like campaign worker leases; any
  replica (or the doctor) reaps records whose owner stopped renewing.
* **Placement** — :class:`ClusterClient` ranks replicas per run key
  with rendezvous (highest-random-weight) hashing, so every client
  sends the same key to the same replica while it is alive — in-flight
  duplicate submissions still coalesce server-side — and keys
  redistribute minimally when membership changes.
* **Failover** — each replica gets its own :class:`ServeClient`
  (transport retries + circuit breaker).  When the preferred replica
  is dead or draining the client walks the rendezvous order; work the
  dead replica already published is re-served from the shared cache by
  whichever replica answers, so a mid-run crash costs at most a re-run
  of the unfinished jobs, never a wrong or lost result.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.serve import protocol
from repro.serve.client import (
    Response,
    RetryPolicy,
    ServeClient,
    ServeClientError,
)
from repro.sim import cache as disk_cache
from repro.sim import iofaults
from repro.sim.config import env_float

#: Heartbeat-renewed member records older than this are stale.
DEFAULT_MEMBER_TTL_S = 15.0


def member_ttl() -> float:
    """Member-record staleness horizon (``REPRO_MEMBER_TTL`` seconds)."""
    return env_float("REPRO_MEMBER_TTL", DEFAULT_MEMBER_TTL_S,
                     minimum=0.1)


def members_dir() -> Path:
    """The membership registry lives inside the shared cache dir."""
    return disk_cache.cache_dir() / "cluster" / "members"


def member_id_for(host: str, port: int) -> str:
    """Filesystem-safe member id; one record per bound address, so a
    daemon restarted onto the same port supersedes its old self."""
    safe_host = "".join(ch if ch.isalnum() or ch in "._-" else "-"
                        for ch in host)
    return f"{safe_host}-{port}"


@dataclass
class MemberRecord:
    """One replica's registry entry (age/stale computed at load time)."""

    member_id: str
    host: str
    port: int
    pid: int = 0
    started_at: float = 0.0          # wall clock, informational
    age_s: float = 0.0               # mtime age when loaded
    stale: bool = False

    @property
    def path(self) -> Path:
        return members_dir() / f"{self.member_id}.json"

    def to_payload(self) -> dict:
        return {"member_id": self.member_id, "host": self.host,
                "port": self.port, "pid": self.pid,
                "started_at": self.started_at}

    def to_dict(self) -> dict:
        info = self.to_payload()
        info.update({"age_s": round(self.age_s, 3), "stale": self.stale})
        return info


def register(host: str, port: int,
             pid: Optional[int] = None) -> MemberRecord:
    """Publish (or renew) this daemon's member record."""
    record = MemberRecord(
        member_id=member_id_for(host, port), host=host, port=port,
        pid=pid if pid is not None else os.getpid(),
        started_at=time.time())
    heartbeat(record)
    return record


def heartbeat(record: MemberRecord) -> None:
    """Re-publish the record; the fresh mtime is the liveness signal.

    Uses the full crash-consistent publish so a daemon SIGKILLed
    mid-heartbeat leaves the previous valid record (or a sweepable
    temp file), never a torn one.
    """
    path = record.path
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    os.close(fd)
    data = json.dumps(record.to_payload(), sort_keys=True).encode()
    try:
        iofaults.publish_bytes("member", path, data, tmp)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def deregister(record: MemberRecord) -> None:
    """Remove the record on clean shutdown (crash leaves it to reap)."""
    try:
        record.path.unlink()
    except OSError:
        pass


def _load_record(path: Path, ttl_s: float) -> Optional[MemberRecord]:
    try:
        age_s = time.time() - path.stat().st_mtime
        data = json.loads(path.read_bytes().decode())
        return MemberRecord(
            member_id=str(data["member_id"]), host=str(data["host"]),
            port=int(data["port"]), pid=int(data.get("pid", 0)),
            started_at=float(data.get("started_at", 0.0)),
            age_s=age_s, stale=age_s > ttl_s)
    except (OSError, ValueError, KeyError, TypeError):
        return None                  # torn/corrupt: doctor's to repair


def load_members(include_stale: bool = False,
                 ttl_s: Optional[float] = None) -> List[MemberRecord]:
    """All parseable member records, stalest last; corrupt files are
    skipped here and repaired by ``repro doctor``."""
    ttl = ttl_s if ttl_s is not None else member_ttl()
    records = []
    root = members_dir()
    if not root.is_dir():
        return records
    for path in sorted(root.glob("*.json")):
        record = _load_record(path, ttl)
        if record is not None and (include_stale or not record.stale):
            records.append(record)
    records.sort(key=lambda r: (r.age_s, r.member_id))
    return records


def reap_stale(ttl_s: Optional[float] = None) -> List[str]:
    """Unlink records whose owner stopped renewing; returns their ids.

    Safe from any process — like stale campaign leases, a record that
    outlived its TTL belongs to a daemon that is gone (or wedged past
    usefulness), and a live daemon simply re-registers on its next
    heartbeat.
    """
    reaped = []
    for record in load_members(include_stale=True, ttl_s=ttl_s):
        if record.stale:
            try:
                record.path.unlink()
                reaped.append(record.member_id)
            except OSError:
                pass
    return reaped


def cluster_status(ttl_s: Optional[float] = None,
                   probe_timeout: float = 2.0) -> dict:
    """Registry + live health sweep for ``repro cluster status``."""
    members = load_members(include_stale=True, ttl_s=ttl_s)
    entries = []
    alive = 0
    for record in members:
        info = record.to_dict()
        if record.stale:
            info["health"] = "stale"
        else:
            client = ServeClient(
                record.host, record.port, timeout=probe_timeout,
                policy=RetryPolicy(retries=0, backoff_s=0.0))
            try:
                reply = client.healthz()
                info["health"] = ("draining"
                                  if reply.body.get("draining")
                                  else "ok")
                info["queue_depth"] = reply.body.get("queue_depth")
                alive += info["health"] == "ok"
            except ServeClientError as exc:
                info["health"] = "unreachable"
                info["detail"] = str(exc)
        entries.append(info)
    return {"members": entries, "alive": alive,
            "registry": str(members_dir()), "ttl_s": ttl_s
            if ttl_s is not None else member_ttl()}


# ----------------------------------------------------------------------
# Failover-aware client
# ----------------------------------------------------------------------

def rendezvous_rank(digest: str, member_ids: List[str]) -> List[str]:
    """Order *member_ids* for *digest* by highest-random-weight hash.

    Every client computes the same order from the same inputs, so one
    key always lands on one live replica (server-side coalescing keeps
    winning) and a membership change only remaps the keys that scored
    the lost replica first.
    """
    return sorted(
        member_ids,
        key=lambda member: zlib.crc32(f"{digest}:{member}".encode()),
        reverse=True)


class ClusterClient:
    """Submits against a replica set with rendezvous placement and
    cache-deduplicated failover.

    Replicas come from an explicit ``replicas`` list of ``(host,
    port)`` pairs or, by default, from the registry in the shared
    cache dir (refreshed between failover sweeps).  Each replica keeps
    its own :class:`ServeClient` so transport retries and the circuit
    breaker are scoped per replica — one dead daemon fails fast while
    the others stay hot.
    """

    def __init__(self, replicas: Optional[List[Tuple[str, int]]] = None,
                 client_id: Optional[str] = None, timeout: float = 60.0,
                 policy: Optional[RetryPolicy] = None,
                 min_slice_s: float = 2.0):
        self.client_id = client_id
        self.timeout = timeout
        self.policy = policy if policy is not None else RetryPolicy()
        self.min_slice_s = min_slice_s
        self.failovers = 0           # observability: replicas walked past
        self._static = replicas is not None
        self._replicas: Dict[str, Tuple[str, int]] = {}
        self._clients: Dict[str, ServeClient] = {}
        if replicas is not None:
            for host, port in replicas:
                self._replicas[member_id_for(host, port)] = (host, port)
        else:
            self.refresh()

    def refresh(self) -> None:
        """Re-read the registry (no-op for a static replica list)."""
        if self._static:
            return
        fresh = {record.member_id: (record.host, record.port)
                 for record in load_members()}
        if fresh:
            self._replicas = fresh
        for member in list(self._clients):
            if member not in self._replicas:
                del self._clients[member]

    @property
    def members(self) -> List[str]:
        return sorted(self._replicas)

    def _client(self, member: str) -> ServeClient:
        if member not in self._clients:
            host, port = self._replicas[member]
            self._clients[member] = ServeClient(
                host, port, client_id=self.client_id,
                timeout=self.timeout, policy=self.policy)
        return self._clients[member]

    def ranked(self, digest: str) -> List[str]:
        return rendezvous_rank(digest, self.members)

    def healthy_members(self, probe_timeout: float = 2.0) -> List[str]:
        """The members answering ``/healthz`` and not draining."""
        healthy = []
        for member in self.members:
            host, port = self._replicas[member]
            probe = ServeClient(host, port, timeout=probe_timeout,
                                policy=RetryPolicy(retries=0,
                                                   backoff_s=0.0))
            try:
                reply = probe.healthz()
            except ServeClientError:
                continue
            if reply.ok and not reply.body.get("draining"):
                healthy.append(member)
        return healthy

    def submit_and_wait(self, request: dict,
                        timeout: float = 300.0) -> Response:
        """Submit to the rendezvous-preferred replica; fail over on
        transport death.

        Each replica gets a bounded slice of the deadline; a replica
        that dies mid-wait (circuit open, retries exhausted, garbled
        storm) forfeits its slice and the next-ranked replica gets the
        same request.  Because results are content-addressed in the
        shared cache, a resubmission of work the dead replica already
        finished is answered inline as a hit — failover deduplicates
        by construction.  Raises :class:`ServeClientError` only when
        no replica produced a terminal outcome before *timeout*.
        """
        deadline = time.monotonic() + timeout
        digest = protocol.request_digest(request)
        last_error: Optional[Exception] = None
        sweep = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"cluster submit_and_wait: no terminal outcome "
                    f"within {timeout}s "
                    f"(last error: {last_error})") from last_error
            order = self.ranked(digest)
            if not order:
                self.refresh()
                order = self.ranked(digest)
            if not order:
                raise ServeClientError(
                    f"no replicas in the cluster registry at "
                    f"{members_dir()}")
            for position, member in enumerate(order):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                slice_s = min(remaining,
                              max(self.min_slice_s,
                                  remaining / len(order)))
                try:
                    return self._client(member).submit_and_wait(
                        request, timeout=slice_s)
                except ServeClientError as exc:
                    last_error = exc
                    if position + 1 < len(order):
                        self.failovers += 1
                    continue
            sweep += 1
            self.refresh()
            pause = self.policy.delay_s(min(sweep, 6), "cluster")
            time.sleep(min(pause, max(0.0,
                                      deadline - time.monotonic())))
