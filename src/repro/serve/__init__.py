"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

The serving layer turns the existing substrate into an online system:
the content-addressed disk cache is the admission layer (fingerprint
hits are answered inline in microseconds), the supervised batch engine
is the backend (misses queue, coalesce, and execute under watchdogs and
retries with per-completion disk checkpointing), and the mid-run
snapshot store powers progress streaming.  See ``repro.serve.app`` for
the endpoint and backpressure contract.
"""

from repro.serve.app import (
    ServeApp,
    ServeHandle,
    client_quota,
    queue_max,
    serve_host,
    serve_port,
    start_in_thread,
)
from repro.serve.client import (
    GarbledResponseError,
    Response,
    ServeClient,
    ServeClientError,
)
from repro.serve.cluster import ClusterClient, MemberRecord, member_ttl
from repro.serve.netfaults import NetFaultSpecError
from repro.serve.protocol import (
    ProtocolError,
    parse_run_request,
    request_digest,
)

__all__ = [
    "ServeApp", "ServeHandle", "start_in_thread",
    "ServeClient", "ServeClientError", "GarbledResponseError",
    "Response", "ClusterClient", "MemberRecord", "member_ttl",
    "NetFaultSpecError",
    "ProtocolError", "parse_run_request", "request_digest",
    "serve_host", "serve_port", "queue_max", "client_quota",
]
