"""The ``repro serve`` daemon: simulation-as-a-service over HTTP/JSON.

Pure-stdlib asyncio server.  The admission layer IS the content-addressed
disk cache: a submission whose fingerprint already resolves on disk is
answered inline with the stored payload (microseconds, byte-identical to
what any other reader of that cache entry would serialize); misses are
admitted into a bounded queue — duplicates coalescing onto the in-flight
job — and executed by the supervised batch engine on a dedicated
executor thread, inheriting every reliability property the engine
already has (watchdog timeouts, retries, pool rebuilds, per-completion
disk checkpointing).  That last property makes serving crash-safe: a
daemon SIGKILLed mid-queue loses its queue but none of its completed
work, and every finished request resubmitted to a fresh daemon is a
cache hit.

Endpoints::

    GET  /healthz                 liveness probe (+ draining/member_id)
    GET  /cluster                 membership registry view
    GET  /metrics                 queue depth, hit rate, p50/p99, workers
    POST /submit                  one run request (see serve.protocol)
    POST /batch                   {"requests": [...]} bulk admission
    GET  /jobs/<id>?wait=S        job status; long-polls up to S seconds
    GET  /jobs/<id>/progress      mid-run progress from the snapshot
                                  store; ?stream=1 for chunked JSON lines,
                                  ?detail=1 to include IPC-so-far

Backpressure contract: a full queue or an exhausted per-client quota
answers ``429`` with a ``Retry-After`` header priced from the current
backlog and the observed per-miss service time; the body's ``error``
field distinguishes ``queue_full`` from ``quota_exceeded``.  A daemon
that has begun shutting down answers ``503 draining`` instead, so
cluster clients fail over immediately rather than queueing against a
dying replica.

With ``cluster=True`` (``repro serve --cluster``) the daemon also
publishes a heartbeat-renewed member record into the shared cache dir
(see ``repro.serve.cluster``) so peers and clients can discover it;
``/cluster`` serves the registry view.  Both sides of every connection
cross the ``repro.serve.netfaults`` shim (sites ``daemon.accept`` /
``daemon.respond``) so ``REPRO_NET_FAULTS`` can deterministically
wreck the transport plane in chaos tests.

Env knobs (validated like every other ``REPRO_*`` knob):
``REPRO_SERVE_HOST``, ``REPRO_SERVE_PORT``, ``REPRO_QUEUE_MAX``,
``REPRO_CLIENT_QUOTA``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.sim import cache as disk_cache
from repro.sim import runner, snapshot, supervisor
from repro.sim.cache import metrics_to_dict
from repro.sim.config import ConfigurationError, env_int, env_str
from repro.serve import cluster as cluster_mod
from repro.serve import netfaults, protocol
from repro.serve.queue import (
    ADMIT_COALESCED,
    ADMIT_QUEUE_FULL,
    AdmissionQueue,
    Job,
)
from repro.serve.quotas import ClientQuotas

LOG = logging.getLogger("repro.serve")

DEFAULT_PORT = 8787
DEFAULT_QUEUE_MAX = 256
DEFAULT_CLIENT_QUOTA = 64

#: Submission bodies larger than this are rejected with 413.
MAX_BODY_BYTES = 1 << 20
#: Long-poll ceiling per /jobs request (clients re-poll past this).
MAX_WAIT_S = 60.0

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


def serve_host() -> str:
    return env_str("REPRO_SERVE_HOST", "127.0.0.1")


def serve_port() -> int:
    """TCP port (``REPRO_SERVE_PORT``); 0 binds an ephemeral port."""
    return env_int("REPRO_SERVE_PORT", DEFAULT_PORT, minimum=0)


def queue_max() -> int:
    """Bounded admission-queue depth (``REPRO_QUEUE_MAX``)."""
    return env_int("REPRO_QUEUE_MAX", DEFAULT_QUEUE_MAX, minimum=1)


def client_quota() -> int:
    """In-flight jobs per client (``REPRO_CLIENT_QUOTA``; 0 = unlimited)."""
    return env_int("REPRO_CLIENT_QUOTA", DEFAULT_CLIENT_QUOTA, minimum=0)


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


class ServeApp:
    """One daemon instance: HTTP frontend + dispatcher + engine thread."""

    def __init__(self, host: Optional[str] = None,
                 port: Optional[int] = None,
                 queue_depth: Optional[int] = None,
                 quota: Optional[int] = None,
                 engine_jobs: Optional[int] = None,
                 batch_linger_s: float = 0.05,
                 heal_on_start: bool = True,
                 cluster: bool = False):
        self.host = host if host is not None else serve_host()
        self.port = port if port is not None else serve_port()
        self.heal_on_start = heal_on_start
        self.doctor_report = None     # DoctorReport from startup healing
        self.queue = AdmissionQueue(
            queue_depth if queue_depth is not None else queue_max())
        self.quotas = ClientQuotas(
            quota if quota is not None else client_quota())
        self.engine_jobs = engine_jobs
        self.cluster_enabled = cluster
        self.member: Optional[cluster_mod.MemberRecord] = None
        self._heartbeat: Optional[asyncio.Task] = None
        self.batch_linger_s = max(0.0, batch_linger_s)
        self.started_at = time.monotonic()
        self.busy_s = 0.0            # executor time spent in run_batch
        self._paused = False
        self._closing = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._closed: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._engine_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine")
        self._handlers: set = set()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        # The serial engine's SIGALRM watchdog only works on the main
        # thread, and the daemon always runs batches on an executor
        # thread — so a run-timeout armed with a single engine job
        # could never fire.  Refuse at startup instead of silently
        # serving without the protection the operator asked for.
        effective_jobs = (self.engine_jobs if self.engine_jobs
                          is not None else runner.job_count())
        if supervisor.run_timeout() is not None and effective_jobs < 2:
            raise ConfigurationError(
                f"repro serve needs >= 2 engine jobs when "
                f"REPRO_RUN_TIMEOUT is set (got {effective_jobs}): the "
                f"serial watchdog is SIGALRM-based and cannot run on "
                f"the daemon's executor thread — raise --jobs/"
                f"REPRO_JOBS or unset REPRO_RUN_TIMEOUT")
        # Heal before binding: a daemon restarted onto a damaged cache
        # (torn entries from its own SIGKILL, stale leases, a diverged
        # store) must not admit traffic until the durable state is
        # trustworthy again — a corrupt entry served as a "hit" is the
        # one failure mode this layer can never have.
        if self.heal_on_start:
            from repro.sim import doctor

            report = doctor.diagnose(repair=True)
            self.doctor_report = report
            LOG.info("startup heal: %s", report.summary())
            if not report.healthy:
                for finding in report.findings:
                    if not finding.repaired:
                        LOG.warning("unrepaired: %s", finding.describe())
        self._loop = asyncio.get_event_loop()
        self._wake = asyncio.Event()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        if self.cluster_enabled:
            # Register only after the real (possibly ephemeral) port is
            # known; the record renews from a loop task so a wedged or
            # killed daemon goes stale and gets reaped by its peers.
            self.member = cluster_mod.register(self.host, self.port)
            self._heartbeat = self._loop.create_task(
                self._heartbeat_loop())
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(signum, self.request_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal support

    def request_shutdown(self) -> None:
        """Thread-unsafe shutdown trigger; must run on the loop thread."""
        self._closing = True
        if self._wake is not None:
            self._wake.set()
        if self._closed is not None:
            self._closed.set()

    async def _heartbeat_loop(self) -> None:
        ttl = cluster_mod.member_ttl()
        while not self._closing:
            await asyncio.sleep(max(0.05, ttl / 3.0))
            if self._closing:
                return
            try:
                cluster_mod.heartbeat(self.member)
                cluster_mod.reap_stale()
            except OSError as exc:
                # A failed renewal (cache dir wrecked, injected fault)
                # must not kill the daemon: it keeps serving, and the
                # record simply goes stale until a renewal succeeds.
                LOG.warning("member heartbeat failed: %s", exc)

    async def wait_closed(self) -> None:
        await self._closed.wait()
        # Leave the cluster first so clients stop routing new work
        # here while we drain.
        if self._heartbeat is not None:
            self._heartbeat.cancel()
            try:
                await self._heartbeat
            except (asyncio.CancelledError, Exception):
                pass
        if self.member is not None:
            cluster_mod.deregister(self.member)
        # Fail whatever is still queued *before* tearing the server down
        # so no long-poller can hang (or, on Pythons where
        # ``Server.wait_closed`` waits for handlers, deadlock teardown).
        # An in-flight engine batch keeps checkpointing to the disk
        # cache, so its work is not lost — it is simply re-served as a
        # hit by the next daemon.
        for job in list(self.queue.pending):
            self._finish_job(job, {
                "status": "failed", "source": "shutdown", "attempts": 0,
                "metrics": None,
                "failure": {"kind": "shutdown", "exc_type": "Shutdown",
                            "message": "daemon shut down before this "
                                       "job was scheduled"}})
        self.queue.pending.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Grace period: let woken long-pollers flush their terminal
        # responses before the loop is torn down under them.
        deadline = time.monotonic() + 5.0
        while self._handlers and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
        self._engine_pool.shutdown(wait=False)

    def run(self) -> int:
        """Foreground entrypoint for ``repro serve`` (blocks until
        SIGINT/SIGTERM)."""
        async def _main() -> None:
            await self.start()
            print(f"repro-serve listening on "
                  f"http://{self.host}:{self.port} "
                  f"(queue={self.queue.max_depth}, "
                  f"quota={self.quotas.limit or 'unlimited'})",
                  flush=True)
            await self.wait_closed()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass
        return 0

    # -- test hooks (thread-safe) --------------------------------------

    def pause_dispatch(self) -> None:
        """Stop claiming new batches (queued jobs stay queued)."""
        self._call_on_loop(self._set_paused, True)

    def resume_dispatch(self) -> None:
        self._call_on_loop(self._set_paused, False)

    def _set_paused(self, value: bool) -> None:
        self._paused = value
        if not value and self._wake is not None:
            self._wake.set()

    def _call_on_loop(self, fn, *args) -> None:
        if self._loop is None or self._loop.is_closed():
            fn(*args)
            return
        done = threading.Event()

        def _apply() -> None:
            fn(*args)
            done.set()

        try:
            self._loop.call_soon_threadsafe(_apply)
        except RuntimeError:       # loop closed between check and call
            fn(*args)
            return
        done.wait(timeout=10)

    # -- dispatcher ----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while not self._closing:
            await self._wake.wait()
            self._wake.clear()
            if self.batch_linger_s:
                # Let a burst accumulate so it becomes one engine batch.
                await asyncio.sleep(self.batch_linger_s)
            while (self.queue.pending and not self._paused
                   and not self._closing):
                jobs = self.queue.drain()
                begin = time.monotonic()
                outcome = await self._loop.run_in_executor(
                    self._engine_pool, self._run_jobs,
                    [job.request for job in jobs])
                self.busy_s += time.monotonic() - begin
                self._apply_batch(jobs, outcome)

    def _run_jobs(self, requests: List) -> object:
        """Engine-thread entry: run one claimed batch non-strictly."""
        try:
            return runner.run_batch(requests, jobs=self.engine_jobs,
                                    strict=False, fail_fast=False)
        except Exception as exc:       # engine-level failure, not per-run
            return exc

    def _apply_batch(self, jobs: List[Job], outcome: object) -> None:
        if isinstance(outcome, Exception):
            failure = {"kind": "engine", "exc_type": type(outcome).__name__,
                       "message": str(outcome)}
            for job in jobs:
                self._finish_job(job, {
                    "status": "failed", "source": "engine", "attempts": 0,
                    "metrics": None, "failure": failure})
            return
        for job, run in zip(jobs, outcome.outcomes):
            result = {"status": run.status, "source": run.source,
                      "attempts": run.attempts, "metrics": None,
                      "failure": None}
            if run.ok:
                # Prefer the raw on-disk payload the engine just
                # checkpointed: the served bytes are then identical to
                # any other reader of the same cache entry.
                payload = disk_cache.load_payload(job.key)
                if payload is None:
                    payload = metrics_to_dict(run.metrics)
                result["metrics"] = payload
            elif run.failure is not None:
                result["failure"] = run.failure.to_dict()
            self._finish_job(job, result)

    def _finish_job(self, job: Job, result: dict) -> None:
        self.queue.finish(job, result)
        for client in job.clients:
            self.quotas.release(client)
        job.clients.clear()
        LOG.info("%s", json.dumps(
            {"event": "job_done", "job_id": job.job_id,
             "status": result["status"], "attempts": result["attempts"],
             "submissions": job.submissions,
             "service_s": round(job.finished_at - job.submitted_at, 6)},
            sort_keys=True))

    # -- admission -----------------------------------------------------

    def _admit_one(self, data, client: str) -> Tuple[int, dict, dict]:
        """Admit one submission object; returns (status, body, headers)."""
        begin = time.monotonic()
        if self._closing:
            # Draining: unlike 429 (try me again shortly) this tells a
            # cluster client to take the work to another replica now.
            self.queue.counters["rejected_draining"] += 1
            return 503, {"error": "draining",
                         "detail": "daemon is shutting down; resubmit "
                                   "to another replica"}, \
                {"Retry-After": "1"}
        try:
            request = protocol.parse_run_request(data)
        except protocol.ProtocolError as exc:
            return exc.status, {"error": "bad_request",
                                "detail": str(exc)}, {}
        self.queue.counters["submitted"] += 1
        key = request.key()
        digest = disk_cache.key_digest(key)
        job_id = digest[:16]

        payload = disk_cache.load_payload(key)
        if payload is not None:
            self.queue.record_hit(time.monotonic() - begin)
            return 200, {"status": "ok", "source": "cache",
                         "job_id": job_id, "metrics": payload}, {}

        existing = self.queue.get(job_id)
        coalescing = existing is not None and not existing.terminal
        holds_slot = coalescing and client in existing.clients
        if not holds_slot and not self.quotas.try_acquire(client):
            self.queue.counters["rejected_quota"] += 1
            return 429, {"error": "quota_exceeded",
                         "detail": f"client {client!r} already has "
                                   f"{self.quotas.limit} job(s) in "
                                   f"flight"}, \
                {"Retry-After": str(self.queue.retry_after_s())}

        verdict, job = self.queue.admit(job_id, digest, request, key)
        if verdict == ADMIT_QUEUE_FULL:
            if not holds_slot:
                self.quotas.release(client)
            return 429, {"error": "queue_full",
                         "detail": f"admission queue is at its "
                                   f"{self.queue.max_depth}-entry "
                                   f"bound"}, \
                {"Retry-After": str(self.queue.retry_after_s())}
        job.clients.add(client)
        self._wake.set()
        body = {"status": "queued", "job_id": job.job_id,
                "coalesced": verdict == ADMIT_COALESCED,
                "position": self.queue.depth()}
        return 202, body, {}

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            self._handlers.discard(task)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if netfaults.accept("daemon.accept") != "ok":
            # Injected refuse/reset at the accept seam: sever before
            # reading a byte — the client observes a dead dial.
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else "unknown"
        try:
            # A request already in flight when shutdown begins is still
            # served (its job was force-finished by ``wait_closed``, so
            # the response is immediate); only keep-alive *reuse* stops.
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                client = headers.get("x-client-id", peer_host)
                begin = time.monotonic()
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                status = await self._route(
                    method, target, headers, body, client, writer)
                LOG.info("%s", json.dumps(
                    {"event": "request", "method": method,
                     "target": target, "status": abs(status),
                     "client": client,
                     "duration_s": round(time.monotonic() - begin, 6)},
                    sort_keys=True))
                if not keep_alive or status < 0 or self._closing:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.TimeoutError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[tuple]:
        try:
            line = await reader.readline()
        except (ConnectionResetError, asyncio.LimitOverrunError):
            return None
        if not line or not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if not raw or raw in (b"\r\n", b"\n"):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            return method, target, headers, None   # routed to 413
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _route(self, method: str, target: str, headers: dict,
                     body: Optional[bytes], client: str,
                     writer: asyncio.StreamWriter) -> int:
        path = urlsplit(target).path
        query = {k: v[-1] for k, v in
                 parse_qs(urlsplit(target).query).items()}
        if body is None:
            return await self._respond(writer, 413,
                                       {"error": "payload_too_large"})
        if path == "/healthz" and method == "GET":
            return await self._respond(writer, 200, {
                "ok": True, "queue_depth": self.queue.depth(),
                "draining": self._closing,
                "member_id": self.member.member_id
                if self.member is not None else None,
                "uptime_s": round(time.monotonic() - self.started_at, 3)})
        if path == "/cluster" and method == "GET":
            return await self._respond(writer, 200, self.cluster_info())
        if path == "/metrics" and method == "GET":
            return await self._respond(writer, 200, self.metrics())
        if path == "/submit" and method == "POST":
            data, error = self._parse_json(body)
            if error:
                return await self._respond(writer, 400, error)
            status, payload, extra = self._admit_one(data, client)
            return await self._respond(writer, status, payload, extra)
        if path == "/batch" and method == "POST":
            data, error = self._parse_json(body)
            if error:
                return await self._respond(writer, 400, error)
            try:
                batch = protocol.parse_submission(data)
            except protocol.ProtocolError as exc:
                return await self._respond(writer, 400, {
                    "error": "bad_request", "detail": str(exc)})
            results = []
            for item in batch["requests"]:
                status, payload, extra = self._admit_one(item, client)
                entry = dict(payload)
                entry["http_status"] = status
                if "Retry-After" in extra:
                    entry["retry_after_s"] = int(extra["Retry-After"])
                results.append(entry)
            return await self._respond(writer, 200, {"results": results})
        if path.startswith("/jobs/") and method == "GET":
            return await self._route_jobs(path, query, writer)
        if path in ("/healthz", "/cluster", "/metrics", "/submit",
                    "/batch"):
            return await self._respond(writer, 405, {
                "error": "method_not_allowed"})
        return await self._respond(writer, 404, {"error": "not_found"})

    async def _route_jobs(self, path: str, query: dict,
                          writer: asyncio.StreamWriter) -> int:
        parts = [p for p in path.split("/") if p]
        job = self.queue.get(parts[1]) if len(parts) >= 2 else None
        if job is None:
            return await self._respond(writer, 404, {
                "error": "unknown_job",
                "detail": "no such job this daemon lifetime (completed "
                          "work is re-served from the cache on "
                          "resubmit)"})
        if len(parts) == 2:
            wait_s = self._float_param(query, "wait", 0.0)
            if wait_s > 0 and not job.terminal:
                try:
                    await asyncio.wait_for(job.done.wait(),
                                           min(wait_s, MAX_WAIT_S))
                except asyncio.TimeoutError:
                    pass
            return await self._respond(writer, 200, job.describe())
        if len(parts) == 3 and parts[2] == "progress":
            detail = query.get("detail") in ("1", "true", "yes")
            if query.get("stream") in ("1", "true", "yes"):
                interval = max(0.05, self._float_param(
                    query, "interval", 0.25))
                return await self._stream_progress(
                    writer, job, interval, detail)
            return await self._respond(
                writer, 200, self._progress_probe(job, detail))
        return await self._respond(writer, 404, {"error": "not_found"})

    @staticmethod
    def _float_param(query: dict, name: str, default: float) -> float:
        try:
            return float(query.get(name, default))
        except (TypeError, ValueError):
            return default

    @staticmethod
    def _parse_json(body: bytes) -> Tuple[Optional[dict], Optional[dict]]:
        if not body:
            return None, {"error": "bad_request",
                          "detail": "empty body (expected JSON)"}
        try:
            return json.loads(body.decode()), None
        except (ValueError, UnicodeDecodeError) as exc:
            return None, {"error": "bad_request",
                          "detail": f"body is not valid JSON: {exc}"}

    # -- progress ------------------------------------------------------

    def _progress_probe(self, job: Job, detail: bool = False) -> dict:
        """One progress observation from the mid-run snapshot store."""
        total = job.request.n_accesses or 0
        info = {"job_id": job.job_id, "state": job.state,
                "total_accesses": total}
        if job.terminal:
            info["result"] = job.result
            info["accesses_done"] = total if (
                job.result or {}).get("status") == "ok" else None
            return info
        header = snapshot.peek(job.key)
        if header is None:
            info["accesses_done"] = 0
            return info
        done = header["access_index"] + 1
        info["accesses_done"] = done
        if total:
            info["fraction"] = round(done / total, 4)
        if detail:
            loaded = snapshot.load(job.key)
            if loaded is not None:
                core = loaded[1].get("core", {})
                instructions = core.get("instructions", 0)
                cycles = core.get("fetch", 0.0)
                info["instructions"] = instructions
                info["ipc_so_far"] = round(
                    instructions / cycles, 6) if cycles else None
        return info

    async def _stream_progress(self, writer: asyncio.StreamWriter,
                               job: Job, interval: float,
                               detail: bool) -> int:
        head = (f"HTTP/1.1 200 OK\r\n"
                f"Content-Type: application/json\r\n"
                f"Transfer-Encoding: chunked\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head)
        await writer.drain()

        async def _emit(payload: dict) -> None:
            chunk = _json_bytes(payload)
            writer.write(f"{len(chunk):x}\r\n".encode("latin-1")
                         + chunk + b"\r\n")
            await writer.drain()

        try:
            while True:
                probe = self._progress_probe(job, detail)
                await _emit(probe)
                if job.terminal or self._closing:
                    break
                try:
                    await asyncio.wait_for(job.done.wait(), interval)
                except asyncio.TimeoutError:
                    pass
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        return -200   # negative: the connection must close (chunked EOF)

    # -- observability -------------------------------------------------

    def cluster_info(self) -> dict:
        """Registry view served on ``/cluster`` (stale peers included,
        flagged, so operators can see who stopped renewing)."""
        return {
            "enabled": self.cluster_enabled,
            "member_id": self.member.member_id
            if self.member is not None else None,
            "registry": str(cluster_mod.members_dir()),
            "members": [record.to_dict() for record in
                        cluster_mod.load_members(include_stale=True)],
        }

    def metrics(self) -> dict:
        uptime = max(1e-9, time.monotonic() - self.started_at)
        data = self.queue.snapshot()
        data.update({
            "uptime_s": round(uptime, 3),
            "worker_utilization": round(min(1.0, self.busy_s / uptime), 4),
            "engine_busy_s": round(self.busy_s, 3),
            "clients_in_flight": self.quotas.total_in_flight(),
            "client_quota": self.quotas.limit,
            "engine": runner.engine_stats().to_dict(),
        })
        return data

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict,
                       extra_headers: Optional[dict] = None) -> int:
        body, action = netfaults.respond("daemon.respond",
                                         _json_bytes(payload))
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}"]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if action != "ok":
            return await self._respond_faulted(writer, status, head,
                                               body, action)
        writer.write(head + body)
        await writer.drain()
        return status

    async def _respond_faulted(self, writer: asyncio.StreamWriter,
                               status: int, head: bytes, body: bytes,
                               action: str) -> int:
        """Apply an injected response-side fault (netfaults shim).

        Every action returns a negative status so the keep-alive loop
        closes the connection: a blackholed, reset, half-sent or
        duplicated response leaves the stream unusable by definition.
        """
        if action == "reset":
            transport = writer.transport
            if transport is not None:
                transport.abort()          # RST, not FIN
            return -status
        if action == "drop":
            return -status                 # write nothing; FIN on close
        if action == "half-close":
            writer.write(head + body[:len(body) // 2])
            await writer.drain()
            return -status
        writer.write(head + body + head + body)     # action == "dup"
        await writer.drain()
        return -status


def start_in_thread(**kwargs) -> "ServeHandle":
    """Boot a daemon on a background thread (tests and benchmarks).

    Binds an ephemeral port unless ``port`` is given; returns a handle
    exposing the bound ``port``, the ``app``, and ``stop()``.
    """
    kwargs.setdefault("port", 0)
    app = ServeApp(**kwargs)
    started = threading.Event()
    failure: List[BaseException] = []

    def _main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(app.start())
        except BaseException as exc:           # surface bind errors
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_until_complete(app.wait_closed())
        finally:
            try:
                remaining = asyncio.all_tasks(loop)
                for task in remaining:
                    task.cancel()
                if remaining:
                    loop.run_until_complete(asyncio.gather(
                        *remaining, return_exceptions=True))
            finally:
                loop.close()

    thread = threading.Thread(target=_main, daemon=True,
                              name="repro-serve")
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("serve daemon did not start within 30s")
    if failure:
        raise failure[0]
    return ServeHandle(app, thread)


class ServeHandle:
    """Controls a daemon started by :func:`start_in_thread`."""

    def __init__(self, app: ServeApp, thread: threading.Thread):
        self.app = app
        self.thread = thread

    @property
    def port(self) -> int:
        return self.app.port

    @property
    def host(self) -> str:
        return self.app.host

    def pause(self) -> None:
        self.app.pause_dispatch()

    def resume(self) -> None:
        self.app.resume_dispatch()

    def stop(self, timeout: float = 30.0) -> None:
        self.app._call_on_loop(self.app.request_shutdown)
        self.thread.join(timeout=timeout)
